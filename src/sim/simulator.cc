#include "sim/simulator.h"

#include <algorithm>
#include <cmath>

#include "apps/predefined.h"
#include "hub/engine.h"
#include "hub/fpga.h"
#include "hub/mcu.h"
#include "hub/placer.h"
#include "il/lower.h"
#include "sim/replay.h"
#include "support/error.h"

namespace sidewinder::sim {

namespace {

using detail::channelMapping;
using detail::classifyIntervals;
using detail::meanLatency;
using detail::sampleAt;

/** Event-driven strategies: run a hub condition over the trace. */
struct HubRun
{
    std::vector<double> triggerTimes;
};

HubRun
runHubCondition(const trace::Trace &trace,
                const std::vector<il::ChannelInfo> &channels,
                const il::Program &program, bool share_nodes)
{
    hub::Engine engine(channels, share_nodes);
    engine.addCondition(
        1, il::lower(program, channels, il::LowerOptions{share_nodes}));

    const auto mapping = channelMapping(trace, channels);
    const std::size_t n = trace.sampleCount();
    std::vector<double> values(channels.size());

    HubRun run;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t c = 0; c < mapping.size(); ++c)
            values[c] = trace.channels[mapping[c]][i];
        engine.pushSamples(values, trace.timeOf(i));
        for (const auto &event : engine.drainWakeEvents())
            run.triggerTimes.push_back(event.timestamp);
    }
    return run;
}

/** The Predefined Activity condition for this application's sensor. */
core::ProcessingPipeline
predefinedConditionFor(const apps::Application &app, double threshold)
{
    const auto channels = app.channels();
    const bool audio = channels.size() == 1 &&
                       channels.front().name == "AUDIO";
    if (audio)
        return apps::significantSoundCondition(
            threshold > 0.0 ? threshold
                            : apps::defaultSoundThreshold);
    return apps::significantMotionCondition(
        threshold > 0.0 ? threshold : apps::defaultMotionThreshold);
}

} // namespace

std::string
strategyName(Strategy strategy, double sleep_interval_seconds)
{
    switch (strategy) {
      case Strategy::AlwaysAwake:
        return "AA";
      case Strategy::DutyCycling:
        return "DC-" + std::to_string(static_cast<int>(
                           sleep_interval_seconds));
      case Strategy::Batching:
        return "Ba-" + std::to_string(static_cast<int>(
                           sleep_interval_seconds));
      case Strategy::PredefinedActivity:
        return "PA";
      case Strategy::Sidewinder:
        return "Sw";
      case Strategy::Oracle:
        return "Oracle";
    }
    return "?";
}

SimResult
simulate(const trace::Trace &trace, const apps::Application &app,
         const SimConfig &config)
{
    // Any injected fault routes through the full transport +
    // supervision stack; a no-fault plan must leave this fast path —
    // and therefore every output bit — untouched.
    if (config.faults.any())
        return simulateSupervised(trace, app, config);

    trace.checkInvariants();
    const double total = trace.durationSeconds();
    const auto truth = trace.eventsOfType(app.eventType());

    PowerModel model = nexus4();
    DeviceTimeline timeline(total);
    std::vector<double> detections;
    SimResult result;
    result.configName =
        strategyName(config.strategy, config.sleepIntervalSeconds);

    const double trans = model.transitionSeconds;
    const double dwell = config.awakeDwellSeconds;
    const double event_dwell =
        config.eventDwellSeconds > 0.0
            ? config.eventDwellSeconds
            : app.recommendedEventDwellSeconds();
    const double lookback = config.lookbackSeconds > 0.0
                                ? config.lookbackSeconds
                                : app.recommendedLookbackSeconds();

    switch (config.strategy) {
      case Strategy::AlwaysAwake: {
        timeline.addAwakeInterval(0.0, total);
        detections =
            app.classify(trace, 0, trace.sampleCount());
        break;
      }

      case Strategy::Oracle: {
        // Hypothetical ideal: wakes exactly at each event of interest
        // and stays awake just long enough to process it, with
        // perfect detections. This is the floor every realizable
        // approach is compared against (Section 4.2).
        for (const auto &ev : truth) {
            timeline.addAwakeInterval(
                ev.startTime,
                ev.startTime + event_dwell);
            detections.push_back(ev.midTime());
        }
        break;
      }

      case Strategy::DutyCycling: {
        // The sleep interval covers the whole asleep phase including
        // both 1 s transitions, so intervals shorter than two
        // transition times buy no actual sleep — reproducing the
        // paper's finding that DC-2 costs more than Always Awake.
        const double gap =
            std::max(config.sleepIntervalSeconds, 2.0 * trans);
        double awake_start = trans;
        while (awake_start < total) {
            double awake_end =
                std::min(awake_start + dwell, total);
            // "If an action is detected, the phone is kept awake for
            // another 4 seconds" (Section 4.2).
            while (awake_end < total) {
                const auto begin =
                    sampleAt(trace, awake_end - dwell);
                const auto end = sampleAt(trace, awake_end);
                if (app.classify(trace, begin, end).empty())
                    break;
                awake_end = std::min(awake_end + dwell, total);
            }
            timeline.addAwakeInterval(awake_start, awake_end);
            awake_start = awake_end + gap;
        }
        const auto merged =
            timeline.mergedIntervals(2.0 * trans - 1e-9);
        detections = classifyIntervals(trace, app, merged, 0.0);
        result.meanDetectionLatencySeconds =
            meanLatency(trace, app.eventType(), merged, 0.0);
        break;
      }

      case Strategy::Batching: {
        // The hub buffers sensor data while the CPU sleeps; every
        // cycle the CPU wakes and processes the whole batch, so no
        // data (and no event) is lost — at the cost of latency.
        model.hubMw = hub::msp430().activePowerMw;
        result.mcuName = hub::msp430().name;
        const double gap =
            std::max(config.sleepIntervalSeconds, 2.0 * trans);
        double awake_start = gap;
        while (awake_start < total) {
            const double awake_end =
                std::min(awake_start + dwell, total);
            timeline.addAwakeInterval(awake_start, awake_end);
            awake_start = awake_end + gap;
        }
        // Batched processing sees the entire trace.
        detections = app.classify(trace, 0, trace.sampleCount());
        result.meanDetectionLatencySeconds = meanLatency(
            trace, app.eventType(),
            timeline.mergedIntervals(2.0 * trans - 1e-9), total);
        break;
      }

      case Strategy::PredefinedActivity:
      case Strategy::Sidewinder: {
        core::ProcessingPipeline pipeline =
            config.strategy == Strategy::Sidewinder
                ? app.wakeCondition()
                : predefinedConditionFor(app,
                                         config.predefinedThreshold);
        const il::Program program = pipeline.compile();
        const auto channels = app.channels();

        if (config.strategy == Strategy::Sidewinder) {
            const il::ExecutionPlan plan = il::lower(program, channels);
            std::vector<hub::ExecutorModel> space;
            switch (config.hubBackend) {
              case HubBackend::Microcontroller:
                for (const auto &mcu : hub::availableMcus())
                    space.push_back(hub::mcuExecutor(mcu));
                break;
              case HubBackend::Fpga:
                space.push_back(hub::fpgaExecutor(hub::ice40Hub()));
                break;
              case HubBackend::Heterogeneous:
                space = hub::platformExecutors();
                break;
            }
            const hub::PlacementDecision home =
                hub::placeCondition(plan, space);
            if (!home.placed()) {
                if (config.hubBackend == HubBackend::Fpga)
                    throw CapabilityError(
                        "condition does not fit the FPGA fabric");
                // Re-derive selectMcu's diagnostic (names the binding
                // budget); unreachable when the space holds the
                // always-feasible AP fallback.
                hub::selectMcuForCost(plan.cost());
                throw CapabilityError(
                    "no hub executor can home the condition");
            }
            model.hubMw = home.marginalPowerMw;
            result.mcuName = home.executorName;
            result.placement = home;
        } else {
            const hub::McuModel mcu = hub::msp430();
            model.hubMw = mcu.activePowerMw;
            result.mcuName = mcu.name;
        }

        const HubRun run = runHubCondition(trace, channels, program,
                                           config.shareHubNodes);
        result.hubTriggerCount = run.triggerTimes.size();
        for (double t_e : run.triggerTimes)
            timeline.addAwakeInterval(
                t_e + trans, t_e + trans + event_dwell);

        const auto merged =
            timeline.mergedIntervals(2.0 * trans - 1e-9);
        detections =
            classifyIntervals(trace, app, merged, lookback);
        result.meanDetectionLatencySeconds =
            meanLatency(trace, app.eventType(), merged, lookback);
        break;
      }
    }

    result.timeline = timeline.summarize(model);
    result.averagePowerMw = result.timeline.averagePowerMw;
    result.hubMw = model.hubMw;

    result.detection =
        app.coalesceDetections()
            ? metrics::matchEventsCoalesced(truth, detections,
                                            app.matchTolerance())
            : metrics::matchEvents(truth, detections,
                                   app.matchTolerance());
    result.recall = result.detection.recall();
    result.precision = result.detection.precision();
    return result;
}

} // namespace sidewinder::sim
