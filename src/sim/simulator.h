/**
 * @file
 * Trace-driven simulator (Section 4 of the paper): replays a recorded
 * trace under one of the sensing configurations of Section 4.2 —
 * Always Awake, Duty Cycling, Batching, Predefined Activity,
 * Sidewinder, or the Oracle — and reports power, wake-ups, recall and
 * precision.
 */

#ifndef SIDEWINDER_SIM_SIMULATOR_H
#define SIDEWINDER_SIM_SIMULATOR_H

#include <string>

#include "apps/app.h"
#include "hub/placer.h"
#include "metrics/events.h"
#include "sim/faults.h"
#include "sim/power_model.h"
#include "sim/timeline.h"
#include "trace/types.h"

namespace sidewinder::sim {

/** Which hardware executes the Sidewinder wake-up condition. */
enum class HubBackend {
    /** MSP430 / LM4F120 selected by the capability model (paper). */
    Microcontroller,
    /** The modeled iCE40-class FPGA fabric (Section 7 future work). */
    Fpga,
    /**
     * The whole placement space — MCUs, the FPGA fabric, and the
     * AP-fallback — homed by the negotiated-congestion placer
     * (hub::platformExecutors): the condition lands wherever is
     * cheapest under every capacity budget.
     */
    Heterogeneous,
};

/** The sensing configurations of Section 4.2 of the paper. */
enum class Strategy {
    /** Main CPU awake for the whole trace. */
    AlwaysAwake,
    /** Wake every N seconds, sample for the dwell, sleep again. */
    DutyCycling,
    /** Like Duty Cycling, but the hub buffers data across sleeps. */
    Batching,
    /** Hub runs the manufacturer's significant-motion/sound detector. */
    PredefinedActivity,
    /** Hub runs the application's custom wake-up condition. */
    Sidewinder,
    /** Hypothetical ideal: awake exactly during events of interest. */
    Oracle,
};

/** Short display name, e.g. "DC-10" for Duty Cycling at 10 s. */
std::string strategyName(Strategy strategy,
                         double sleep_interval_seconds = 0.0);

/** Parameters of one simulation. */
struct SimConfig
{
    Strategy strategy = Strategy::AlwaysAwake;
    /** Sleep interval for Duty Cycling / Batching, seconds. */
    double sleepIntervalSeconds = 10.0;
    /**
     * Data-collection dwell of Duty Cycling / Batching, seconds
     * (Section 4.2: "collect sensor data for 4 seconds").
     */
    double awakeDwellSeconds = 4.0;
    /**
     * How long the device stays awake after the *last* hub trigger of
     * an event-driven wake-up (Predefined Activity / Sidewinder) —
     * long enough to run the second-stage classifier on the buffered
     * data, far shorter than a blind collection window. 0 (the
     * default) uses the application's own recommendation
     * (apps::Application::recommendedEventDwellSeconds).
     */
    double eventDwellSeconds = 0.0;
    /**
     * Raw-history window the hub hands the application on a wake-up,
     * seconds (Section 3.8: the hub passes buffered raw sensor data).
     * 0 (the default) uses the application's own recommendation
     * (apps::Application::recommendedLookbackSeconds).
     */
    double lookbackSeconds = 0.0;
    /** Cross-condition node sharing on the hub. */
    bool shareHubNodes = true;
    /**
     * Threshold of the Predefined Activity detector; 0 selects the
     * built-in default for the application's sensor type.
     */
    double predefinedThreshold = 0.0;
    /** Hub hardware for the Sidewinder strategy. */
    HubBackend hubBackend = HubBackend::Microcontroller;
    /**
     * Fault schedule to inject (sim/faults.h). The default plan
     * injects nothing and leaves every output bit-identical to a run
     * without the fault machinery; any active fault routes the run
     * through the full transport + supervision stack
     * (simulateSupervised), Sidewinder strategy only.
     */
    FaultPlan faults;
};

/** Outputs of one simulation. */
struct SimResult
{
    /** Display name of the configuration, e.g. "Sw" or "DC-10". */
    std::string configName;
    /** State occupancy and energy. */
    TimelineSummary timeline;
    /** Average power, mW (timeline.averagePowerMw). */
    double averagePowerMw = 0.0;
    /** Raw hub OUT firings (before awake-interval merging). */
    std::size_t hubTriggerCount = 0;
    /** Detection quality against ground truth. */
    metrics::MatchResult detection;
    double recall = 1.0;
    double precision = 1.0;
    /** Hub executor used ("" when the strategy needs none). */
    std::string mcuName;
    /** Hub power included in the model, mW. */
    double hubMw = 0.0;
    /**
     * Full placement decision for Sidewinder strategies (executor,
     * marginal power, wire-push target); default (unplaced) for
     * strategies without a hub.
     */
    hub::PlacementDecision placement;
    /**
     * Mean delay from event start to the device being awake and able
     * to process it (the paper's timeliness concern for Batching),
     * seconds.
     */
    double meanDetectionLatencySeconds = 0.0;
    /**
     * Fault-tolerance counters; all zero unless config.faults
     * injected something.
     */
    metrics::FaultMetrics faults;
};

/**
 * Replay @p trace for @p app under @p config.
 *
 * Thread-safety contract: concurrent simulate() calls are safe and
 * deterministic as long as each call's @p trace and @p app are not
 * mutated during the run (sharing the same instances read-only across
 * calls is fine — simulate() only reads them). Every call owns its
 * hub engine, kernels, and timeline; the only process-wide state
 * touched is immutable-after-construction (the mutex-guarded
 * dsp::FftPlan cache, static capability tables) plus relaxed atomic
 * DSP counters. All randomness is baked into the trace at generation
 * time, so a cell's result is a pure function of its inputs — this is
 * what lets sim::runSweep (sim/sweep.h) fan a grid of calls across
 * threads and return bit-identical results to a serial loop.
 *
 * @throws ConfigError when the trace lacks a channel the application
 *     needs; CapabilityError when a Sidewinder condition fits no
 *     available MCU.
 */
SimResult simulate(const trace::Trace &trace,
                   const apps::Application &app, const SimConfig &config);

} // namespace sidewinder::sim

#endif // SIDEWINDER_SIM_SIMULATOR_H
