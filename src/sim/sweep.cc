#include "sim/sweep.h"

namespace sidewinder::sim {

std::vector<SweepCell>
makeGrid(const std::vector<const trace::Trace *> &traces,
         const std::vector<const apps::Application *> &apps,
         const std::vector<SimConfig> &configs)
{
    std::vector<SweepCell> cells;
    cells.reserve(traces.size() * apps.size() * configs.size());
    for (const apps::Application *app : apps)
        for (const SimConfig &config : configs)
            for (const trace::Trace *trace : traces)
                cells.push_back({trace, app, config});
    return cells;
}

std::vector<SimResult>
runSweep(const std::vector<SweepCell> &cells,
         support::ThreadPool &pool)
{
    return pool.parallelMap(cells.size(), [&](std::size_t i) {
        const SweepCell &cell = cells[i];
        return simulate(*cell.trace, *cell.app, cell.config);
    });
}

std::vector<SimResult>
runSweep(const std::vector<SweepCell> &cells)
{
    return runSweep(cells, support::ThreadPool::shared());
}

std::vector<SimResult>
runSweepSerial(const std::vector<SweepCell> &cells)
{
    std::vector<SimResult> results;
    results.reserve(cells.size());
    for (const SweepCell &cell : cells)
        results.push_back(
            simulate(*cell.trace, *cell.app, cell.config));
    return results;
}

} // namespace sidewinder::sim
