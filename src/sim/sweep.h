/**
 * @file
 * Parallel sweep layer: the paper's whole evaluation (Sections 4-5)
 * is a grid of independent trace-driven simulations — app x strategy
 * x sleep-interval x trace — and every cell is a pure function of its
 * inputs (all randomness is baked into the trace at generation time).
 * This layer expresses such a grid as cells and fans them across a
 * support::ThreadPool while keeping the output order, and the output
 * bits, identical to a serial loop over the same cells.
 */

#ifndef SIDEWINDER_SIM_SWEEP_H
#define SIDEWINDER_SIM_SWEEP_H

#include <cstddef>
#include <vector>

#include "apps/app.h"
#include "sim/simulator.h"
#include "support/thread_pool.h"
#include "trace/types.h"

namespace sidewinder::sim {

/**
 * One cell of a simulation grid. The pointed-to trace and application
 * must outlive the sweep and are shared read-only across workers
 * (both are immutable during simulate(); see the thread-safety
 * contract on sim::simulate()).
 */
struct SweepCell
{
    const trace::Trace *trace = nullptr;
    const apps::Application *app = nullptr;
    SimConfig config;
};

/**
 * Cartesian grid in deterministic row-major order: for each app, for
 * each config, for each trace. Callers needing a different nesting
 * build the cell vector directly — only the *order within the vector*
 * defines the order of the results.
 */
std::vector<SweepCell>
makeGrid(const std::vector<const trace::Trace *> &traces,
         const std::vector<const apps::Application *> &apps,
         const std::vector<SimConfig> &configs);

/**
 * Simulate every cell on @p pool, returning results[i] ==
 * simulate(*cells[i].trace, *cells[i].app, cells[i].config).
 *
 * Deterministic: each cell owns its engine and timeline, every
 * simulation is seed-driven through its trace, and results land in
 * cell order — so the output is field-for-field identical to
 * runSweepSerial() at any thread count (tests/sim_sweep_test.cc
 * asserts this). The first exception thrown by any cell is rethrown.
 */
std::vector<SimResult> runSweep(const std::vector<SweepCell> &cells,
                                support::ThreadPool &pool);

/** Overload on the process-wide shared pool (SW_THREADS-sized). */
std::vector<SimResult> runSweep(const std::vector<SweepCell> &cells);

/** Reference serial loop over the same cells, same output order. */
std::vector<SimResult>
runSweepSerial(const std::vector<SweepCell> &cells);

} // namespace sidewinder::sim

#endif // SIDEWINDER_SIM_SWEEP_H
