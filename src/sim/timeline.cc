#include "sim/timeline.h"

#include <algorithm>

#include "support/error.h"

namespace sidewinder::sim {

DeviceTimeline::DeviceTimeline(double total_seconds)
    : total(total_seconds)
{
    if (!(total_seconds > 0.0))
        throw ConfigError("timeline duration must be positive");
}

void
DeviceTimeline::addAwakeInterval(double start, double end)
{
    start = std::max(start, 0.0);
    end = std::min(end, total);
    if (end <= start)
        return;
    intervals.push_back(Interval{start, end});
}

std::vector<Interval>
DeviceTimeline::mergedIntervals(double min_gap) const
{
    std::vector<Interval> sorted = intervals;
    std::sort(sorted.begin(), sorted.end(),
              [](const Interval &a, const Interval &b) {
                  return a.start < b.start;
              });

    std::vector<Interval> merged;
    for (const auto &interval : sorted) {
        if (!merged.empty() &&
            interval.start <= merged.back().end + min_gap) {
            merged.back().end = std::max(merged.back().end,
                                         interval.end);
        } else {
            merged.push_back(interval);
        }
    }
    return merged;
}

TimelineSummary
DeviceTimeline::summarize(const PowerModel &model) const
{
    // Gaps strictly shorter than the two transitions cannot host a
    // sleep; a gap of exactly two transition times is a (wasteful but
    // legal) zero-second sleep, which is precisely what makes short
    // duty-cycling intervals cost more than staying awake (§5.4).
    const auto merged =
        mergedIntervals(2.0 * model.transitionSeconds - 1e-9);

    TimelineSummary summary;
    summary.totalSeconds = total;
    summary.wakeUps = merged.size();

    for (const auto &interval : merged)
        summary.awakeSeconds += interval.duration();

    // Each awake episode needs one wake and one sleep transition,
    // except where the episode touches the trace boundary.
    double wake_trans = 0.0;
    double sleep_trans = 0.0;
    for (const auto &interval : merged) {
        if (interval.start > 0.0)
            wake_trans += std::min(model.transitionSeconds,
                                   interval.start);
        if (interval.end < total)
            sleep_trans += std::min(model.transitionSeconds,
                                    total - interval.end);
    }

    // Transitions eat into what would otherwise be asleep time; if
    // the schedule is so dense that they do not fit, the device is
    // effectively awake instead (clamp proportionally).
    double asleep = total - summary.awakeSeconds - wake_trans -
                    sleep_trans;
    if (asleep < 0.0) {
        const double trans = wake_trans + sleep_trans;
        const double available = total - summary.awakeSeconds;
        const double scale = trans > 0.0 ? available / trans : 0.0;
        wake_trans *= scale;
        sleep_trans *= scale;
        asleep = 0.0;
    }

    summary.wakeTransitionSeconds = wake_trans;
    summary.sleepTransitionSeconds = sleep_trans;
    summary.asleepSeconds = asleep;

    const double energy_mj =
        summary.awakeSeconds * model.awakeMw +
        summary.asleepSeconds * model.asleepMw +
        wake_trans * model.wakeTransitionMw +
        sleep_trans * model.sleepTransitionMw +
        total * model.hubMw;
    summary.energyMj = energy_mj;
    summary.averagePowerMw = energy_mj / total;
    return summary;
}

} // namespace sidewinder::sim
