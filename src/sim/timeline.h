/**
 * @file
 * Awake/asleep bookkeeping of the simulated device.
 *
 * The simulator records when the main CPU must be awake; the timeline
 * merges those intervals (a device cannot complete an
 * awake-asleep-awake round trip inside two transition times), charges
 * the wake/sleep transitions of Table 1, and prices the result with a
 * PowerModel.
 */

#ifndef SIDEWINDER_SIM_TIMELINE_H
#define SIDEWINDER_SIM_TIMELINE_H

#include <cstddef>
#include <vector>

#include "sim/power_model.h"

namespace sidewinder::sim {

/** A half-open awake interval in seconds. */
struct Interval
{
    double start = 0.0;
    double end = 0.0;

    double duration() const { return end - start; }
};

/** Energy and state-occupancy summary of a simulated run. */
struct TimelineSummary
{
    double totalSeconds = 0.0;
    double awakeSeconds = 0.0;
    double asleepSeconds = 0.0;
    double wakeTransitionSeconds = 0.0;
    double sleepTransitionSeconds = 0.0;
    /** Number of distinct awake episodes (= wake-ups). */
    std::size_t wakeUps = 0;
    /** Average power over the whole run, mW (hub included). */
    double averagePowerMw = 0.0;
    /** Total energy over the run, millijoules. */
    double energyMj = 0.0;
};

/** Accumulates awake intervals and prices them with a PowerModel. */
class DeviceTimeline
{
  public:
    /** @param total_seconds Length of the simulated trace. */
    explicit DeviceTimeline(double total_seconds);

    /**
     * Mark [start, end) as requiring the main CPU awake. Intervals
     * may be added in any order and may overlap; they are clamped to
     * [0, total].
     */
    void addAwakeInterval(double start, double end);

    /**
     * Merged awake intervals, closing gaps shorter than @p min_gap
     * seconds (a device cannot usefully sleep for less than the two
     * transition times).
     */
    std::vector<Interval> mergedIntervals(double min_gap) const;

    /** Price the timeline. Transition time is taken from the gaps. */
    TimelineSummary summarize(const PowerModel &model) const;

    /** Total simulated duration, seconds. */
    double totalSeconds() const { return total; }

  private:
    double total;
    std::vector<Interval> intervals;
};

} // namespace sidewinder::sim

#endif // SIDEWINDER_SIM_TIMELINE_H
