/**
 * @file
 * Exception hierarchy used across the Sidewinder library.
 *
 * Following the gem5 fatal()/panic() distinction: ConfigError and
 * ParseError correspond to user mistakes (bad pipeline wiring, malformed
 * intermediate code), while InternalError flags conditions that indicate
 * a bug in the library itself.
 */

#ifndef SIDEWINDER_SUPPORT_ERROR_H
#define SIDEWINDER_SUPPORT_ERROR_H

#include <stdexcept>
#include <string>

namespace sidewinder {

/** Base class for all errors raised by the Sidewinder library. */
class SidewinderError : public std::runtime_error
{
  public:
    explicit SidewinderError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** A user-supplied configuration is invalid (bad pipeline, bad params). */
class ConfigError : public SidewinderError
{
  public:
    explicit ConfigError(const std::string &what) : SidewinderError(what) {}
};

/** Intermediate-language text failed to lex, parse, or validate. */
class ParseError : public SidewinderError
{
  public:
    explicit ParseError(const std::string &what) : SidewinderError(what) {}
};

/**
 * A wake-up condition exceeds the capabilities of the selected
 * microcontroller (e.g. FFT pipelines on the MSP430, Section 4 of the
 * paper).
 */
class CapabilityError : public SidewinderError
{
  public:
    explicit CapabilityError(const std::string &what)
        : SidewinderError(what)
    {}
};

/** A malformed frame or protocol violation on the phone-hub link. */
class TransportError : public SidewinderError
{
  public:
    explicit TransportError(const std::string &what)
        : SidewinderError(what)
    {}
};

/** An invariant inside the library was violated; indicates a bug. */
class InternalError : public SidewinderError
{
  public:
    explicit InternalError(const std::string &what)
        : SidewinderError(what)
    {}
};

} // namespace sidewinder

#endif // SIDEWINDER_SUPPORT_ERROR_H
