#include "support/logging.h"

#include <iostream>
#include <mutex>

namespace sidewinder {

namespace {

LogLevel globalLevel = LogLevel::Warn;
std::mutex logMutex;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "?";
}

} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

void
logMessage(LogLevel level, const std::string &message)
{
    if (level < globalLevel)
        return;
    std::scoped_lock lock(logMutex);
    std::cerr << "[sidewinder:" << levelName(level) << "] " << message
              << "\n";
}

} // namespace sidewinder
