/**
 * @file
 * Minimal leveled logging for the library and its tools.
 *
 * Modeled on gem5's inform()/warn(): log output is advisory and never
 * affects simulation results. The default level suppresses everything
 * below Warn so that benchmark output stays clean.
 */

#ifndef SIDEWINDER_SUPPORT_LOGGING_H
#define SIDEWINDER_SUPPORT_LOGGING_H

#include <sstream>
#include <string>

namespace sidewinder {

/** Severity levels, lowest to highest. */
enum class LogLevel { Debug, Info, Warn, Error };

/** Set the global minimum level that will be emitted. */
void setLogLevel(LogLevel level);

/** Current global minimum level. */
LogLevel logLevel();

/** Emit a single log line if @p level passes the global threshold. */
void logMessage(LogLevel level, const std::string &message);

/** Convenience wrappers mirroring gem5's status-message helpers. */
inline void inform(const std::string &m) { logMessage(LogLevel::Info, m); }
inline void warn(const std::string &m) { logMessage(LogLevel::Warn, m); }
inline void logError(const std::string &m)
{
    logMessage(LogLevel::Error, m);
}

} // namespace sidewinder

#endif // SIDEWINDER_SUPPORT_LOGGING_H
