/**
 * @file
 * Fixed-capacity ring buffer.
 *
 * Used by the hub runtime to keep the most recent raw sensor samples so
 * they can be handed to the application on a wake-up (Section 3.8 of the
 * paper: "Our current implementation passes a buffer of raw sensor data
 * to the application"), and by streaming DSP kernels for their windows.
 */

#ifndef SIDEWINDER_SUPPORT_RING_BUFFER_H
#define SIDEWINDER_SUPPORT_RING_BUFFER_H

#include <cstddef>
#include <vector>

#include "support/error.h"

namespace sidewinder {

/**
 * A bounded FIFO that overwrites its oldest element when full.
 *
 * Indexing is oldest-first: operator[](0) is the oldest retained
 * element, operator[](size()-1) the newest.
 */
template <typename T>
class RingBuffer
{
  public:
    /** Create a buffer retaining at most @p capacity elements. */
    explicit RingBuffer(std::size_t capacity)
        : storage(capacity), head(0), count(0)
    {
        if (capacity == 0)
            throw ConfigError("RingBuffer capacity must be positive");
    }

    /** Append @p value, evicting the oldest element if already full. */
    void
    push(const T &value)
    {
        // head < capacity and count <= capacity, so one conditional
        // subtract replaces the modulo (an integer divide on what is
        // the hottest loop of the sample path).
        std::size_t tail = head + count;
        if (tail >= storage.size())
            tail -= storage.size();
        storage[tail] = value;
        if (count == storage.size()) {
            if (++head == storage.size())
                head = 0;
        } else {
            ++count;
        }
    }

    /** Number of elements currently retained. */
    std::size_t size() const { return count; }

    /** Maximum number of retained elements. */
    std::size_t capacity() const { return storage.size(); }

    /** True when no elements are retained. */
    bool empty() const { return count == 0; }

    /** True when the next push will evict the oldest element. */
    bool full() const { return count == storage.size(); }

    /** Element @p i counted from the oldest retained element. */
    const T &
    operator[](std::size_t i) const
    {
        if (i >= count)
            throw InternalError("RingBuffer index out of range");
        std::size_t slot = head + i;
        if (slot >= storage.size())
            slot -= storage.size();
        return storage[slot];
    }

    /** Oldest retained element. */
    const T &front() const { return (*this)[0]; }

    /** Newest retained element. */
    const T &back() const { return (*this)[count - 1]; }

    /** Drop all retained elements. */
    void
    clear()
    {
        head = 0;
        count = 0;
    }

    /** Copy the retained elements, oldest first, into a vector. */
    std::vector<T>
    snapshot() const
    {
        std::vector<T> out;
        out.reserve(count);
        for (std::size_t i = 0; i < count; ++i)
            out.push_back((*this)[i]);
        return out;
    }

  private:
    std::vector<T> storage;
    std::size_t head;
    std::size_t count;
};

} // namespace sidewinder

#endif // SIDEWINDER_SUPPORT_RING_BUFFER_H
