/**
 * @file
 * Deterministic random number generation for trace synthesis.
 *
 * All trace generators draw from a Rng seeded explicitly so that every
 * experiment in the repository is exactly reproducible. The paper's
 * robot runs randomize the order of actions per run (Section 4.1); we
 * reproduce that with per-run seeds.
 */

#ifndef SIDEWINDER_SUPPORT_RNG_H
#define SIDEWINDER_SUPPORT_RNG_H

#include <cstdint>
#include <random>
#include <vector>

namespace sidewinder {

/** A seeded pseudo-random source with the sampling helpers we need. */
class Rng
{
  public:
    /** Construct with an explicit seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed) : engine(seed) {}

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        std::uniform_real_distribution<double> dist(lo, hi);
        return dist(engine);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    uniformInt(std::int64_t lo, std::int64_t hi)
    {
        std::uniform_int_distribution<std::int64_t> dist(lo, hi);
        return dist(engine);
    }

    /** Normal deviate with the given mean and standard deviation. */
    double
    gaussian(double mean, double stddev)
    {
        std::normal_distribution<double> dist(mean, stddev);
        return dist(engine);
    }

    /** Bernoulli trial that succeeds with probability @p p. */
    bool
    chance(double p)
    {
        std::bernoulli_distribution dist(p);
        return dist(engine);
    }

    /**
     * Draw an index according to @p weights (need not be normalized).
     * @return index in [0, weights.size()).
     */
    std::size_t
    weightedIndex(const std::vector<double> &weights)
    {
        std::discrete_distribution<std::size_t> dist(weights.begin(),
                                                     weights.end());
        return dist(engine);
    }

    /** Derive an independent child generator (for per-run streams). */
    Rng
    fork()
    {
        return Rng(engine());
    }

  private:
    std::mt19937_64 engine;
};

} // namespace sidewinder

#endif // SIDEWINDER_SUPPORT_RNG_H
