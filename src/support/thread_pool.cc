#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace sidewinder::support {

namespace {

/**
 * True while the current thread is executing parallelFor bodies —
 * either as a pool worker or as a submitter running its share of the
 * chunks. A nested parallelFor from such a thread runs inline: on a
 * worker it would starve the pool, and on the submitter it would wait
 * behind its own unfinished outer job.
 */
thread_local bool t_insideParallelWork = false;

} // namespace

struct ThreadPool::Job
{
    /** Next unclaimed index (may overshoot end from racing claims). */
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
    std::size_t chunk = 1;
    const std::function<void(std::size_t)> *body = nullptr;
    /** Indices not yet completed or abandoned; 0 means done. */
    std::atomic<std::size_t> remaining{0};
    /** Workers currently inside runChunks for this job. */
    std::size_t activeWorkers = 0;
    std::mutex failLock;
    std::exception_ptr failure;
};

std::optional<std::size_t>
ThreadPool::envThreadOverride()
{
    if (const char *env = std::getenv("SW_THREADS")) {
        char *tail = nullptr;
        const unsigned long parsed = std::strtoul(env, &tail, 10);
        if (tail != env && *tail == '\0' && parsed > 0)
            return static_cast<std::size_t>(parsed);
    }
    return std::nullopt;
}

std::size_t
ThreadPool::defaultThreadCount()
{
    if (const auto override = envThreadOverride())
        return *override;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

ThreadPool &
ThreadPool::shared()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool(std::size_t thread_count)
    : count(thread_count > 0 ? thread_count : defaultThreadCount())
{
    // The calling thread is part of the team, so a pool of N spawns
    // N-1 workers; a pool of 1 is purely inline.
    if (count > 1)
        workers.reserve(count - 1);
    for (std::size_t i = 0; i + 1 < count; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> guard(lock);
        shuttingDown = true;
    }
    wakeWorkers.notify_all();
    for (auto &worker : workers)
        worker.join();
}

void
ThreadPool::runChunks(Job &job)
{
    for (;;) {
        const std::size_t start = job.next.fetch_add(job.chunk);
        if (start >= job.end)
            return;
        const std::size_t stop =
            std::min(start + job.chunk, job.end);
        try {
            for (std::size_t i = start; i < stop; ++i)
                (*job.body)(i);
        } catch (...) {
            {
                std::lock_guard<std::mutex> guard(job.failLock);
                if (!job.failure)
                    job.failure = std::current_exception();
            }
            // Abandon every index nobody has claimed yet; in-flight
            // chunks on other threads still finish.
            const std::size_t prev = job.next.exchange(job.end);
            if (prev < job.end)
                job.remaining.fetch_sub(job.end - prev);
        }
        job.remaining.fetch_sub(stop - start);
    }
}

void
ThreadPool::workerLoop()
{
    t_insideParallelWork = true;
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> guard(lock);
    for (;;) {
        wakeWorkers.wait(guard, [&] {
            return shuttingDown ||
                   (current != nullptr && generation != seen);
        });
        if (shuttingDown)
            return;
        Job *job = current;
        seen = generation;
        // Registration happens under the pool lock, so the submitter
        // cannot retire (and destroy) the job while we hold a claim
        // on it.
        ++job->activeWorkers;
        guard.unlock();
        runChunks(*job);
        guard.lock();
        --job->activeWorkers;
        jobDone.notify_all();
    }
}

void
ThreadPool::parallelFor(std::size_t begin, std::size_t end,
                        const std::function<void(std::size_t)> &body)
{
    if (end <= begin)
        return;

    const std::size_t items = end - begin;
    // Nested calls (a body spawning its own parallelFor) and
    // single-thread pools run inline: correct, allocation-free, and
    // immune to worker-starvation deadlock.
    if (t_insideParallelWork || count <= 1 || items == 1) {
        for (std::size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    Job job;
    job.next.store(begin);
    job.end = end;
    // ~4 chunks per thread balances uneven cell costs against
    // claim-counter contention.
    job.chunk = std::max<std::size_t>(1, items / (count * 4));
    job.body = &body;
    job.remaining.store(items);

    {
        std::unique_lock<std::mutex> guard(lock);
        // One job at a time; concurrent submitters queue here.
        jobDone.wait(guard,
                     [this] { return current == nullptr; });
        current = &job;
        ++generation;
    }
    wakeWorkers.notify_all();

    // The submitting thread is part of the team; while it runs
    // chunks, any parallelFor its bodies issue must go inline.
    t_insideParallelWork = true;
    runChunks(job);
    t_insideParallelWork = false;

    {
        std::unique_lock<std::mutex> guard(lock);
        jobDone.wait(guard, [&job] {
            return job.remaining.load() == 0 &&
                   job.activeWorkers == 0;
        });
        current = nullptr;
    }
    // Queued submitters may now install their job.
    jobDone.notify_all();

    if (job.failure)
        std::rethrow_exception(job.failure);
}

} // namespace sidewinder::support
