/**
 * @file
 * Fixed-size worker pool for the embarrassingly parallel sweeps that
 * dominate the evaluation harness (one trace-driven simulation per
 * grid cell). The pool hands out contiguous index chunks from a
 * shared counter — work-stealing-lite: idle workers keep claiming
 * chunks until the range is exhausted, so uneven cell costs balance
 * without any per-item queueing.
 *
 * Design constraints, in order:
 *  - determinism: parallelFor imposes no ordering of its own; callers
 *    write results by index, so output is independent of scheduling;
 *  - safety: the first exception thrown by any body is captured and
 *    rethrown on the calling thread after the range drains;
 *  - composability: a parallelFor issued from inside a worker (nested
 *    parallelism) executes inline on that worker instead of
 *    deadlocking on the pool's own threads.
 */

#ifndef SIDEWINDER_SUPPORT_THREAD_POOL_H
#define SIDEWINDER_SUPPORT_THREAD_POOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace sidewinder::support {

/** A fixed set of worker threads executing chunked index ranges. */
class ThreadPool
{
  public:
    /**
     * @param thread_count Number of workers; 0 (the default) selects
     *     defaultThreadCount(). A pool of 1 runs everything inline on
     *     the calling thread and spawns no workers.
     */
    explicit ThreadPool(std::size_t thread_count = 0);

    /** Joins all workers; outstanding work completes first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Worker count chosen when none is given: the `SW_THREADS`
     * environment variable when set to a positive integer, otherwise
     * the hardware concurrency (at least 1).
     */
    static std::size_t defaultThreadCount();

    /**
     * The `SW_THREADS` override, when set to a positive integer;
     * nullopt otherwise. Exposed so benchmark JSON writers can record
     * the override next to their timings — a thread count alone does
     * not say whether the host or the operator chose it.
     */
    static std::optional<std::size_t> envThreadOverride();

    /** Process-wide pool built with defaultThreadCount() workers. */
    static ThreadPool &shared();

    /** Number of threads that can execute bodies concurrently. */
    std::size_t threadCount() const { return count; }

    /**
     * Invoke @p body(i) for every i in [begin, end), spread across
     * the workers (the calling thread participates). Returns when
     * every index has completed.
     *
     * Bodies for distinct indices may run concurrently; the caller is
     * responsible for making writes to shared state either disjoint
     * (e.g. one result slot per index) or synchronized.
     *
     * If any body throws, the remaining unclaimed indices are
     * abandoned, in-flight bodies finish, and the first captured
     * exception is rethrown here.
     *
     * Calls from inside a pool worker run the whole range inline on
     * that worker (no deadlock, still exception-safe).
     */
    void parallelFor(std::size_t begin, std::size_t end,
                     const std::function<void(std::size_t)> &body);

    /**
     * Map [0, count) through @p fn, returning results in index order
     * regardless of execution order. The result type must be default-
     * constructible and movable.
     */
    template <typename Fn>
    auto
    parallelMap(std::size_t item_count, Fn &&fn)
        -> std::vector<decltype(fn(std::size_t{}))>
    {
        std::vector<decltype(fn(std::size_t{}))> out(item_count);
        parallelFor(0, item_count,
                    [&](std::size_t i) { out[i] = fn(i); });
        return out;
    }

  private:
    /** One parallelFor invocation's shared state. */
    struct Job;

    void workerLoop();
    void runChunks(Job &job);

    std::size_t count;
    std::vector<std::thread> workers;

    std::mutex lock;
    std::condition_variable wakeWorkers;
    std::condition_variable jobDone;
    Job *current = nullptr;
    /** Bumped per installed job so workers never re-enter one. */
    std::uint64_t generation = 0;
    bool shuttingDown = false;
};

} // namespace sidewinder::support

#endif // SIDEWINDER_SUPPORT_THREAD_POOL_H
