#include "trace/audio_gen.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/error.h"
#include "support/rng.h"

namespace sidewinder::trace {

namespace {

constexpr double twoPi = 2.0 * std::numbers::pi;

/** Ambient background amplitude per environment. */
struct Ambience
{
    double noiseAmp;   ///< broadband noise level
    double humAmp;     ///< mains hum level (office)
    double babbleAmp;  ///< slow modulated chatter level (coffee shop)
    double rumbleAmp;  ///< low-frequency traffic/wind level (outdoors)
};

Ambience
ambienceFor(AudioEnvironment environment)
{
    switch (environment) {
      case AudioEnvironment::Office:
        return {0.010, 0.006, 0.0, 0.0};
      case AudioEnvironment::CoffeeShop:
        return {0.035, 0.0, 0.025, 0.0};
      case AudioEnvironment::Outdoors:
        return {0.020, 0.0, 0.0, 0.030};
    }
    throw ConfigError("unknown audio environment");
}

/** One scheduled segment of the mixing script. */
struct Segment
{
    enum class Kind { Ambient, Siren, Music, Speech } kind;
    double seconds;
    bool hasPhrase = false;
};

struct Builder
{
    Trace trace;
    Rng rng;
    Ambience ambience;
    double time = 0.0;
    double dt;

    Builder(const AudioTraceConfig &config)
        : rng(config.seed), ambience(ambienceFor(config.environment)),
          dt(1.0 / config.sampleRateHz)
    {
        trace.name = config.name;
        trace.sampleRateHz = config.sampleRateHz;
        trace.channelNames = {"AUDIO"};
        trace.channels.assign(1, {});
        trace.channels[0].reserve(static_cast<std::size_t>(
            config.durationSeconds * config.sampleRateHz));
    }

    /** Ambient background sample for the current instant. */
    double
    ambientSample()
    {
        double v = rng.gaussian(0.0, ambience.noiseAmp);
        if (ambience.humAmp > 0.0)
            v += ambience.humAmp * std::sin(twoPi * 120.0 * time);
        if (ambience.babbleAmp > 0.0) {
            const double mod =
                0.5 + 0.5 * std::sin(twoPi * 0.7 * time) *
                          std::sin(twoPi * 0.13 * time);
            v += rng.gaussian(0.0, ambience.babbleAmp * mod);
        }
        if (ambience.rumbleAmp > 0.0) {
            v += ambience.rumbleAmp *
                 (std::sin(twoPi * 17.0 * time) +
                  0.6 * std::sin(twoPi * 31.0 * time + 1.0));
        }
        return v;
    }

    void
    push(double value)
    {
        trace.channels[0].push_back(value);
        time += dt;
    }

    void
    addEvent(const std::string &type, double start, double end)
    {
        trace.events.push_back(GroundTruthEvent{type, start, end});
    }

    void
    emitAmbient(double seconds)
    {
        const auto n = static_cast<std::size_t>(
            seconds * trace.sampleRateHz);
        for (std::size_t i = 0; i < n; ++i)
            push(ambientSample());
    }

    /**
     * Emergency-vehicle wail: a strong sinusoid sweeping inside the
     * detector's 850-1800 Hz band.
     */
    void
    emitSiren(double seconds)
    {
        const double start = time;
        const double lo = rng.uniform(900.0, 1000.0);
        const double hi = rng.uniform(1500.0, 1700.0);
        const double wail_period = rng.uniform(1.2, 1.8);
        const auto n = static_cast<std::size_t>(
            seconds * trace.sampleRateHz);
        double phase = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            const double t = time - start;
            const double sweep =
                0.5 * (1.0 - std::cos(twoPi * t / wail_period));
            const double freq = lo + (hi - lo) * sweep;
            phase += twoPi * freq * dt;
            push(0.35 * std::sin(phase) + ambientSample());
        }
        addEvent(event_type::siren, start, time);
    }

    /**
     * Music: a harmonic chord progression with a beating amplitude
     * envelope — large amplitude variance, steady zero-crossing rate.
     */
    void
    emitMusic(double seconds)
    {
        const double start = time;
        const auto n = static_cast<std::size_t>(
            seconds * trace.sampleRateHz);
        double base = rng.uniform(220.0, 440.0);
        double next_change = 0.5;
        double phase1 = 0.0;
        double phase2 = 0.0;
        double phase3 = 0.0;
        const double beat_hz = rng.uniform(1.5, 2.5);
        for (std::size_t i = 0; i < n; ++i) {
            const double t = time - start;
            if (t >= next_change) {
                // Step to another chord root roughly twice a second.
                base *= std::pow(2.0, rng.uniformInt(-4, 4) / 12.0);
                base = std::clamp(base, 180.0, 520.0);
                next_change += 0.5;
            }
            phase1 += twoPi * base * dt;
            phase2 += twoPi * base * 1.5 * dt;
            phase3 += twoPi * base * 2.0 * dt;
            const double envelope =
                0.25 + 0.75 * std::pow(
                                  0.5 * (1.0 + std::sin(twoPi * beat_hz *
                                                        t)),
                                  2.0);
            const double tone = 0.30 * std::sin(phase1) +
                                0.18 * std::sin(phase2) +
                                0.12 * std::sin(phase3);
            push(envelope * tone + ambientSample());
        }
        addEvent(event_type::music, start, time);
    }

    /**
     * Speech: ~4 syllables/s alternating voiced tones and unvoiced
     * noise bursts with inter-word pauses — high variance of the
     * zero-crossing rate across sub-windows.
     *
     * When @p has_phrase is set, a ~1 s interval inside the segment
     * carries the target phrase. Standing in for the acoustics a
     * speech-to-text engine would recognize, the phrase has a
     * distinctive dual-tone signature (alternating 500 / 750 Hz every
     * 125 ms) that the main-CPU classifier can detect; see DESIGN.md.
     */
    void
    emitSpeech(double seconds, bool has_phrase)
    {
        const double start = time;
        const auto n = static_cast<std::size_t>(
            seconds * trace.sampleRateHz);

        double phrase_begin = -1.0;
        double phrase_end = -1.0;
        if (has_phrase) {
            const double phrase_len = std::min(1.0, seconds * 0.5);
            const double offset =
                rng.uniform(0.0, seconds - phrase_len);
            phrase_begin = start + offset;
            phrase_end = phrase_begin + phrase_len;
        }

        double syllable_left = 0.0;
        bool voiced = true;
        bool in_pause = false;
        double pitch = rng.uniform(140.0, 240.0);
        double phase = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double v;
            if (time >= phrase_begin && time < phrase_end) {
                // Phrase signature: 125 ms slots alternating a
                // distinctive two-tone chord (440 + 660 Hz) with
                // unvoiced noise — speech-like ZCR dynamics, but a
                // timbre ordinary syllables never produce.
                const double slot =
                    std::floor((time - phrase_begin) / 0.125);
                const double t_in = time - phrase_begin;
                if (static_cast<long>(slot) % 2 == 0) {
                    v = 0.22 * std::sin(twoPi * 440.0 * t_in) +
                        0.22 * std::sin(twoPi * 660.0 * t_in);
                } else {
                    v = rng.gaussian(0.0, 0.16);
                }
            } else {
                if (syllable_left <= 0.0) {
                    in_pause = rng.chance(0.25);
                    voiced = rng.chance(0.6);
                    syllable_left = in_pause ? rng.uniform(0.1, 0.35)
                                             : rng.uniform(0.12, 0.28);
                    pitch = rng.uniform(140.0, 240.0);
                }
                syllable_left -= dt;
                if (in_pause) {
                    v = 0.0;
                } else if (voiced) {
                    phase += twoPi * pitch * dt;
                    v = 0.22 * std::sin(phase) +
                        0.10 * std::sin(2.0 * phase);
                } else {
                    v = rng.gaussian(0.0, 0.16);
                }
            }
            push(v + ambientSample());
        }
        addEvent(event_type::speech, start, time);
        if (has_phrase)
            addEvent(event_type::phrase, phrase_begin, phrase_end);
    }
};

} // namespace

std::string
audioEnvironmentName(AudioEnvironment environment)
{
    switch (environment) {
      case AudioEnvironment::Office: return "office";
      case AudioEnvironment::CoffeeShop: return "coffeeshop";
      case AudioEnvironment::Outdoors: return "outdoors";
    }
    return "?";
}

Trace
generateAudioTrace(const AudioTraceConfig &config)
{
    if (config.durationSeconds <= 0.0 || config.sampleRateHz <= 0.0)
        throw ConfigError("audio duration and rate must be positive");
    if (config.sampleRateHz < 3600.0)
        throw ConfigError("audio rate must keep 1800 Hz sirens below "
                          "Nyquist");
    const double event_fraction = config.sirenFraction +
                                  config.musicFraction +
                                  config.speechFraction;
    if (event_fraction >= 0.9)
        throw ConfigError("audio event fractions leave no room for "
                          "ambience");

    Builder b(config);
    const double total = config.durationSeconds;

    // Build the event schedule: segments drawn until each budget is
    // met, then shuffled among ambient gaps.
    std::vector<Segment> events;
    auto fill_budget = [&](Segment::Kind kind, double budget, double lo,
                           double hi) {
        double used = 0.0;
        while (used < budget) {
            const double seconds =
                std::min(b.rng.uniform(lo, hi), budget - used + lo);
            Segment seg{kind, seconds, false};
            if (kind == Segment::Kind::Speech)
                seg.hasPhrase = b.rng.chance(config.phraseProbability);
            events.push_back(seg);
            used += seconds;
        }
    };
    fill_budget(Segment::Kind::Siren, total * config.sirenFraction, 2.0,
                6.0);
    fill_budget(Segment::Kind::Music, total * config.musicFraction, 8.0,
                20.0);
    fill_budget(Segment::Kind::Speech, total * config.speechFraction,
                3.0, 8.0);

    // Fisher-Yates shuffle of the event order.
    for (std::size_t i = events.size(); i > 1; --i)
        std::swap(events[i - 1],
                  events[b.rng.uniformInt(0, static_cast<long>(i) - 1)]);

    double event_seconds = 0.0;
    for (const auto &seg : events)
        event_seconds += seg.seconds;
    const double ambient_total = std::max(total - event_seconds, 0.0);
    const double gap_count = static_cast<double>(events.size()) + 1.0;

    // Interleave ambient gaps (randomly sized around the mean) with the
    // shuffled events.
    double ambient_left = ambient_total;
    for (std::size_t i = 0; i < events.size(); ++i) {
        const double mean_gap = ambient_left /
                                (gap_count - static_cast<double>(i));
        const double gap = std::min(
            ambient_left, b.rng.uniform(0.3 * mean_gap, 1.7 * mean_gap));
        b.emitAmbient(gap);
        ambient_left -= gap;

        const auto &seg = events[i];
        switch (seg.kind) {
          case Segment::Kind::Ambient: break;
          case Segment::Kind::Siren: b.emitSiren(seg.seconds); break;
          case Segment::Kind::Music: b.emitMusic(seg.seconds); break;
          case Segment::Kind::Speech:
            b.emitSpeech(seg.seconds, seg.hasPhrase);
            break;
        }
    }
    if (b.time < total)
        b.emitAmbient(total - b.time);

    std::sort(b.trace.events.begin(), b.trace.events.end(),
              [](const GroundTruthEvent &x, const GroundTruthEvent &y) {
                  return x.startTime < y.startTime;
              });
    b.trace.checkInvariants();
    return b.trace;
}

std::vector<Trace>
generateAudioCorpus(double duration_seconds, std::uint64_t seed)
{
    Rng master(seed);
    std::vector<Trace> corpus;
    const AudioEnvironment environments[] = {AudioEnvironment::Office,
                                             AudioEnvironment::CoffeeShop,
                                             AudioEnvironment::Outdoors};
    for (AudioEnvironment environment : environments) {
        AudioTraceConfig config;
        config.environment = environment;
        config.durationSeconds = duration_seconds;
        config.seed = master.fork().uniformInt(1, 1'000'000'000);
        config.name =
            "audio-" + audioEnvironmentName(environment);
        corpus.push_back(generateAudioTrace(config));
    }
    return corpus;
}

} // namespace sidewinder::trace
