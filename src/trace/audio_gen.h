/**
 * @file
 * Synthetic audio traces with mixed-in events of interest.
 *
 * Stands in for the paper's "three half-hour audio traces in different
 * environments: an office, a coffee shop and outdoors", into which
 * audio events were mixed: "music (5% of each trace), speech (5% of
 * each trace), and sirens (2% of each trace)" (Section 4.1).
 *
 * Events are synthesized to carry exactly the features the paper's
 * detectors key on (Section 3.7.2):
 *  - sirens: strongly pitched sweeps in 850-1800 Hz lasting > 650 ms
 *    (high dominant-frequency peak-to-mean ratio);
 *  - music: harmonic content with a beating amplitude envelope (high
 *    amplitude variance, low zero-crossing-rate variance);
 *  - speech: alternating voiced/unvoiced syllables (high ZCR variance
 *    across sub-windows).
 *
 * A subset of speech segments contains the target "phrase" (< 1% of
 * the trace), reproducing the paper's phrase-detection scenario where
 * the wake-up condition fires on all speech but the Oracle only on the
 * phrase itself (Section 5.2).
 */

#ifndef SIDEWINDER_TRACE_AUDIO_GEN_H
#define SIDEWINDER_TRACE_AUDIO_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/types.h"

namespace sidewinder::trace {

/** The three recording environments of Section 4.1. */
enum class AudioEnvironment { Office, CoffeeShop, Outdoors };

/** Printable name of an environment. */
std::string audioEnvironmentName(AudioEnvironment environment);

/** Parameters of one synthesized audio recording. */
struct AudioTraceConfig
{
    AudioEnvironment environment = AudioEnvironment::Office;
    /** Recording length in seconds (the paper used half-hour traces). */
    double durationSeconds = 1800.0;
    /** Audio sampling rate in Hz (must keep sirens below Nyquist). */
    double sampleRateHz = 4000.0;
    /** Fraction of the trace occupied by sirens. */
    double sirenFraction = 0.02;
    /** Fraction occupied by music. */
    double musicFraction = 0.05;
    /** Fraction occupied by speech. */
    double speechFraction = 0.05;
    /** Probability that a speech segment contains the phrase. */
    double phraseProbability = 0.15;
    /** Seed for the mixing script. */
    std::uint64_t seed = 1;
    /** Trace name recorded in the output. */
    std::string name = "audio";
};

/**
 * Generate one audio recording on a single channel named "AUDIO".
 * Ground-truth events: "siren", "music", "speech", "phrase".
 */
Trace generateAudioTrace(const AudioTraceConfig &config);

/**
 * Generate the paper's three-environment corpus with derived seeds.
 */
std::vector<Trace> generateAudioCorpus(double duration_seconds,
                                       std::uint64_t seed);

} // namespace sidewinder::trace

#endif // SIDEWINDER_TRACE_AUDIO_GEN_H
