#include "trace/augment.h"

#include "support/error.h"
#include "support/rng.h"

namespace sidewinder::trace {

Trace
addGaussianNoise(const Trace &trace, double sigma, std::uint64_t seed)
{
    if (sigma < 0.0)
        throw ConfigError("noise sigma must be non-negative");
    Trace out = trace;
    out.name = trace.name + "+noise";
    Rng rng(seed);
    for (auto &channel : out.channels)
        for (auto &value : channel)
            value += rng.gaussian(0.0, sigma);
    return out;
}

Trace
applyGain(const Trace &trace, double gain)
{
    Trace out = trace;
    out.name = trace.name + "+gain";
    for (auto &channel : out.channels)
        for (auto &value : channel)
            value *= gain;
    return out;
}

Trace
applyOffset(const Trace &trace, const std::vector<double> &offsets)
{
    if (offsets.size() != trace.channels.size())
        throw ConfigError("need one offset per channel");
    Trace out = trace;
    out.name = trace.name + "+offset";
    for (std::size_t ch = 0; ch < out.channels.size(); ++ch)
        for (auto &value : out.channels[ch])
            value += offsets[ch];
    return out;
}

Trace
decimate(const Trace &trace, std::size_t factor)
{
    if (factor == 0)
        throw ConfigError("decimation factor must be positive");
    Trace out;
    out.name = trace.name + "/" + std::to_string(factor);
    out.sampleRateHz = trace.sampleRateHz / static_cast<double>(factor);
    out.channelNames = trace.channelNames;
    out.events = trace.events;
    out.channels.resize(trace.channels.size());
    for (std::size_t ch = 0; ch < trace.channels.size(); ++ch) {
        out.channels[ch].reserve(trace.channels[ch].size() / factor +
                                 1);
        for (std::size_t i = 0; i < trace.channels[ch].size();
             i += factor)
            out.channels[ch].push_back(trace.channels[ch][i]);
    }
    out.checkInvariants();
    return out;
}

} // namespace sidewinder::trace
