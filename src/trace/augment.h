/**
 * @file
 * Trace augmentation utilities: noise injection, gain errors, and
 * resampling. Used by the robustness experiments to ask how far the
 * wake-up conditions' 100%-recall calibration survives sensor
 * imperfections the paper's single prototype could not vary.
 */

#ifndef SIDEWINDER_TRACE_AUGMENT_H
#define SIDEWINDER_TRACE_AUGMENT_H

#include <cstdint>

#include "trace/types.h"

namespace sidewinder::trace {

/**
 * Additive white Gaussian noise on every channel.
 *
 * @param sigma Noise standard deviation, in signal units.
 * @param seed Deterministic noise stream seed.
 */
Trace addGaussianNoise(const Trace &trace, double sigma,
                       std::uint64_t seed);

/**
 * Multiplicative gain error (sensor miscalibration): every sample of
 * every channel scaled by @p gain.
 */
Trace applyGain(const Trace &trace, double gain);

/**
 * Constant per-channel offset (sensor bias). @p offsets must have one
 * entry per channel.
 */
Trace applyOffset(const Trace &trace,
                  const std::vector<double> &offsets);

/**
 * Integer decimation: keep every @p factor-th sample (a cheaper,
 * lower-rate sensor). Ground-truth events are preserved; the sample
 * rate is divided by @p factor.
 */
Trace decimate(const Trace &trace, std::size_t factor);

} // namespace sidewinder::trace

#endif // SIDEWINDER_TRACE_AUGMENT_H
