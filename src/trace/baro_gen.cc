#include "trace/baro_gen.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/error.h"
#include "support/rng.h"

namespace sidewinder::trace {

namespace {

/** Pressure change per building floor, hPa (negative going up). */
constexpr double hpaPerFloor = 0.4;
/** Sea-level-ish ambient pressure, hPa. */
constexpr double ambientHpa = 1013.25;
/** Sensor noise, hPa. */
constexpr double noiseSigma = 0.012;

} // namespace

Trace
generateBaroTrace(const BaroTraceConfig &config)
{
    if (config.durationSeconds <= 0.0 || config.sampleRateHz <= 0.0)
        throw ConfigError("baro trace duration and rate must be "
                          "positive");
    if (config.rideFraction < 0.0 || config.rideFraction >= 0.5)
        throw ConfigError("baro ride fraction must be in [0, 0.5)");

    Trace trace;
    trace.name = config.name;
    trace.sampleRateHz = config.sampleRateHz;
    trace.channelNames = {"BARO"};
    trace.channels.assign(1, {});

    Rng rng(config.seed);
    const double dt = 1.0 / config.sampleRateHz;
    const double total = config.durationSeconds;

    double time = 0.0;
    double level = ambientHpa + rng.uniform(-5.0, 5.0);
    // Slow weather drift, hPa/s (~0.5 hPa/hour).
    double drift = rng.uniform(-1.0, 1.0) * 1.4e-4;

    double blip_left = 0.0;
    double blip_amp = 0.0;

    auto push = [&](double value) {
        trace.channels[0].push_back(
            value + rng.gaussian(0.0, noiseSigma));
        time += dt;
    };

    auto emit_flat = [&](double seconds) {
        const auto n =
            static_cast<std::size_t>(seconds * config.sampleRateHz);
        for (std::size_t i = 0; i < n; ++i) {
            level += drift * dt;
            if (blip_left <= 0.0 &&
                rng.chance(config.blipsPerMinute * dt / 60.0)) {
                blip_left = rng.uniform(0.3, 0.8);
                blip_amp = rng.uniform(-0.08, 0.08);
            }
            double blip = 0.0;
            if (blip_left > 0.0) {
                blip = blip_amp;
                blip_left -= dt;
            }
            push(level + blip);
        }
    };

    auto emit_ride = [&]() {
        // Elevator (fast) or stairs (slow), 1-6 floors, up or down.
        const bool stairs = rng.chance(0.4);
        const long floors = rng.uniformInt(1, stairs ? 2 : 6);
        const double direction = rng.chance(0.5) ? -1.0 : 1.0;
        const double delta =
            direction * hpaPerFloor * static_cast<double>(floors);
        const double seconds =
            static_cast<double>(floors) *
            (stairs ? rng.uniform(8.0, 14.0) : rng.uniform(2.5, 4.0));

        const double start_time = time;
        const double start_level = level;
        const auto n =
            static_cast<std::size_t>(seconds * config.sampleRateHz);
        for (std::size_t i = 0; i < n; ++i) {
            const double phase =
                static_cast<double>(i) / static_cast<double>(n);
            // Smooth S-curve ride profile.
            const double blend =
                0.5 * (1.0 - std::cos(std::numbers::pi * phase));
            level = start_level + delta * blend;
            push(level);
        }
        trace.events.push_back(GroundTruthEvent{
            event_type::floorChange, start_time, time});
    };

    const double ride_budget = total * config.rideFraction;
    double ride_used = 0.0;
    while (time < total - 40.0) {
        emit_flat(rng.uniform(15.0, 60.0));
        if (ride_used < ride_budget) {
            const double before = time;
            emit_ride();
            ride_used += time - before;
        }
    }
    if (time < total)
        emit_flat(total - time);

    std::sort(trace.events.begin(), trace.events.end(),
              [](const GroundTruthEvent &a, const GroundTruthEvent &b) {
                  return a.startTime < b.startTime;
              });
    trace.checkInvariants();
    return trace;
}

} // namespace sidewinder::trace
