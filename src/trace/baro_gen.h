/**
 * @file
 * Synthetic barometer traces for the floor-change extension.
 *
 * The paper's intro lists the barometer among the Nexus 5's sensors;
 * the architecture is sensor-generic, so this generator (plus
 * apps/floors.cc) demonstrates a third sensing domain beyond the
 * paper's accelerometer and microphone evaluations.
 *
 * Physics: ~0.12 hPa of pressure drop per meter of ascent (~0.4 hPa
 * per building floor). A trace is ambient pressure with slow weather
 * drift and sensor noise, plus:
 *  - elevator rides: smooth multi-floor ramps over several seconds
 *    (ground-truth "floor" events);
 *  - stair climbs: slower single-floor ramps (also "floor" events);
 *  - HVAC/door transients: brief pressure blips that are *not*
 *    events, giving the wake-up condition false-positive pressure.
 */

#ifndef SIDEWINDER_TRACE_BARO_GEN_H
#define SIDEWINDER_TRACE_BARO_GEN_H

#include <cstdint>

#include "trace/types.h"

namespace sidewinder::trace {

/** Ground-truth label for floor-change events. */
namespace event_type {
inline const std::string floorChange = "floor";
}

/** Parameters of one synthesized barometer recording. */
struct BaroTraceConfig
{
    /** Recording length in seconds. */
    double durationSeconds = 1200.0;
    /** Barometer sampling rate, Hz. */
    double sampleRateHz = 20.0;
    /** Fraction of time spent riding elevators / climbing stairs. */
    double rideFraction = 0.04;
    /** Mean transient blips (doors, HVAC) per minute. */
    double blipsPerMinute = 1.0;
    /** Seed for the script. */
    std::uint64_t seed = 1;
    /** Trace name recorded in the output. */
    std::string name = "baro";
};

/**
 * Generate one barometer recording on a single channel named "BARO".
 * Ground-truth events: "floor" (one per ride, spanning the ramp).
 */
Trace generateBaroTrace(const BaroTraceConfig &config);

} // namespace sidewinder::trace

#endif // SIDEWINDER_TRACE_BARO_GEN_H
