#include "trace/csv.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "support/error.h"

namespace sidewinder::trace {

namespace {

std::vector<std::string>
splitCommas(const std::string &line)
{
    std::vector<std::string> parts;
    std::string current;
    for (char c : line) {
        if (c == ',') {
            parts.push_back(current);
            current.clear();
        } else {
            current.push_back(c);
        }
    }
    parts.push_back(current);
    return parts;
}

double
parseDouble(const std::string &text, const std::string &context)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == nullptr || *end != '\0' || text.empty())
        throw ParseError("trace csv: bad number '" + text + "' in " +
                         context);
    return value;
}

} // namespace

void
saveCsv(const Trace &trace, std::ostream &out)
{
    trace.checkInvariants();

    out << "# sidewinder-trace v1\n";
    out << "name=" << trace.name << "\n";
    out << "rate=" << trace.sampleRateHz << "\n";
    out << "channels=";
    for (std::size_t i = 0; i < trace.channelNames.size(); ++i) {
        if (i > 0)
            out << ",";
        out << trace.channelNames[i];
    }
    out << "\n";
    for (const auto &ev : trace.events)
        out << "event=" << ev.type << "," << ev.startTime << ","
            << ev.endTime << "\n";
    out << "data\n";

    out.precision(9);
    const std::size_t n = trace.sampleCount();
    for (std::size_t row = 0; row < n; ++row) {
        for (std::size_t ch = 0; ch < trace.channels.size(); ++ch) {
            if (ch > 0)
                out << ",";
            out << trace.channels[ch][row];
        }
        out << "\n";
    }
}

void
saveCsvFile(const Trace &trace, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        throw ConfigError("cannot open '" + path + "' for writing");
    saveCsv(trace, out);
}

Trace
loadCsv(std::istream &in)
{
    Trace trace;
    std::string line;
    bool in_data = false;

    while (std::getline(in, line)) {
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;

        if (!in_data) {
            if (line == "data") {
                if (trace.channelNames.empty())
                    throw ParseError(
                        "trace csv: 'data' before 'channels='");
                trace.channels.assign(trace.channelNames.size(), {});
                in_data = true;
                continue;
            }
            const auto eq = line.find('=');
            if (eq == std::string::npos)
                throw ParseError("trace csv: malformed header line '" +
                                 line + "'");
            const std::string key = line.substr(0, eq);
            const std::string value = line.substr(eq + 1);
            if (key == "name") {
                trace.name = value;
            } else if (key == "rate") {
                trace.sampleRateHz = parseDouble(value, "rate");
            } else if (key == "channels") {
                trace.channelNames = splitCommas(value);
            } else if (key == "event") {
                const auto parts = splitCommas(value);
                if (parts.size() != 3)
                    throw ParseError("trace csv: malformed event '" +
                                     value + "'");
                GroundTruthEvent ev;
                ev.type = parts[0];
                ev.startTime = parseDouble(parts[1], "event start");
                ev.endTime = parseDouble(parts[2], "event end");
                trace.events.push_back(ev);
            } else {
                throw ParseError("trace csv: unknown header key '" +
                                 key + "'");
            }
            continue;
        }

        const auto parts = splitCommas(line);
        if (parts.size() != trace.channels.size())
            throw ParseError("trace csv: row has " +
                             std::to_string(parts.size()) +
                             " columns, expected " +
                             std::to_string(trace.channels.size()));
        for (std::size_t ch = 0; ch < parts.size(); ++ch)
            trace.channels[ch].push_back(
                parseDouble(parts[ch], "data row"));
    }

    if (!in_data)
        throw ParseError("trace csv: missing 'data' section");

    std::sort(trace.events.begin(), trace.events.end(),
              [](const GroundTruthEvent &a, const GroundTruthEvent &b) {
                  return a.startTime < b.startTime;
              });
    trace.checkInvariants();
    return trace;
}

Trace
loadCsvFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError("cannot open '" + path + "' for reading");
    return loadCsv(in);
}

} // namespace sidewinder::trace
