/**
 * @file
 * Persistence of traces in a simple self-describing CSV dialect so
 * experiments can be re-run on stored traces and traces can be
 * inspected with standard tooling.
 *
 * Format:
 *
 *     # sidewinder-trace v1
 *     name=robot-g1-run0
 *     rate=50
 *     channels=ACC_X,ACC_Y,ACC_Z
 *     event=step,12.0,12.1
 *     event=walk,10.0,20.0
 *     data
 *     0.01,0.02,9.81
 *     ...
 */

#ifndef SIDEWINDER_TRACE_CSV_H
#define SIDEWINDER_TRACE_CSV_H

#include <iosfwd>
#include <string>

#include "trace/types.h"

namespace sidewinder::trace {

/** Serialize @p trace to @p out in the sidewinder-trace v1 format. */
void saveCsv(const Trace &trace, std::ostream &out);

/** Serialize @p trace to the file at @p path. */
void saveCsvFile(const Trace &trace, const std::string &path);

/**
 * Parse a trace from @p in.
 * @throws ParseError on malformed input.
 */
Trace loadCsv(std::istream &in);

/** Parse a trace from the file at @p path. */
Trace loadCsvFile(const std::string &path);

} // namespace sidewinder::trace

#endif // SIDEWINDER_TRACE_CSV_H
