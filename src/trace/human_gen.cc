#include "trace/human_gen.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/error.h"
#include "support/rng.h"

namespace sidewinder::trace {

namespace {

constexpr double gravityZ = 9.81;
constexpr double noiseSigma = 0.1;
constexpr double stepPeriodSeconds = 0.55;

/**
 * Non-event motion mix per scenario: fractions of total time spent in
 * each kind of distractor activity. Remaining time (after walking) is
 * idle.
 */
struct ScenarioProfile
{
    double walkFraction;
    double vibrationFraction; ///< vehicle ride (commute)
    double handlingFraction;  ///< carrying / shelving (retail)
    double fidgetFraction;    ///< desk fidgeting (office)
};

ScenarioProfile
profileFor(HumanScenario scenario)
{
    switch (scenario) {
      case HumanScenario::Commute:
        return {0.25, 0.35, 0.05, 0.05};
      case HumanScenario::Retail:
        return {0.37, 0.0, 0.30, 0.05};
      case HumanScenario::Office:
        return {0.20, 0.0, 0.05, 0.15};
    }
    throw ConfigError("unknown human scenario");
}

struct Builder
{
    Trace trace;
    Rng rng;
    double time = 0.0;

    Builder(const HumanTraceConfig &config) : rng(config.seed)
    {
        trace.name = config.name;
        trace.sampleRateHz = config.sampleRateHz;
        trace.channelNames = {"ACC_X", "ACC_Y", "ACC_Z"};
        trace.channels.assign(3, {});
    }

    double dt() const { return 1.0 / trace.sampleRateHz; }

    void
    pushSample(double x, double y, double z)
    {
        trace.channels[0].push_back(x + rng.gaussian(0.0, noiseSigma));
        trace.channels[1].push_back(y + rng.gaussian(0.0, noiseSigma));
        trace.channels[2].push_back(z + rng.gaussian(0.0, noiseSigma));
        time += dt();
    }

    void
    addEvent(const std::string &type, double start, double end)
    {
        trace.events.push_back(GroundTruthEvent{type, start, end});
    }

    void
    emitIdle(double seconds)
    {
        const auto n =
            static_cast<std::size_t>(seconds * trace.sampleRateHz);
        for (std::size_t i = 0; i < n; ++i)
            pushSample(0.0, 0.0, gravityZ);
    }

    /** Human gait: x-axis step bumps peaking inside [2.5, 4.5]. */
    void
    emitWalk(double seconds)
    {
        const double start = time;
        const auto n =
            static_cast<std::size_t>(seconds * trace.sampleRateHz);
        // Floor chosen so the 5-sample smoothed peak of the narrow
        // human bump (0.22 s at 50 Hz) stays inside the detector's
        // [2.5, 4.5] band.
        const double step_amp = rng.uniform(3.3, 4.3);
        // Mid-cycle start and no truncated trailing bump; see the
        // robot generator for the rationale.
        double phase = 0.5;
        bool logged = false;
        bool bump_fits = true;
        const auto bump_samples = static_cast<std::size_t>(
            0.4 * stepPeriodSeconds * trace.sampleRateHz);

        for (std::size_t i = 0; i < n; ++i) {
            phase += dt() / stepPeriodSeconds;
            if (phase >= 1.0) {
                phase -= 1.0;
                logged = false;
                bump_fits = i + bump_samples < n;
            }
            double x = 0.0;
            if (phase < 0.4 && bump_fits) {
                const double s =
                    std::sin(std::numbers::pi * phase / 0.4);
                x = step_amp * s * s;
                if (!logged && phase >= 0.2) {
                    addEvent(event_type::step, time - 0.05, time + 0.05);
                    logged = true;
                }
            }
            const double w = 2.0 * std::numbers::pi * phase;
            pushSample(x, 0.8 * std::sin(w),
                       gravityZ + 0.7 * std::sin(2.0 * w));
        }
        addEvent(event_type::walkSegment, start, time);
    }

    /**
     * Vehicle vibration: broadband low-amplitude shaking on all axes.
     * Looks like significant motion to a generic magnitude detector
     * but produces no x peaks inside the step band.
     */
    void
    emitVibration(double seconds)
    {
        const auto n =
            static_cast<std::size_t>(seconds * trace.sampleRateHz);
        for (std::size_t i = 0; i < n; ++i) {
            pushSample(rng.gaussian(0.0, 0.5),
                       rng.gaussian(0.0, 0.6),
                       gravityZ + rng.gaussian(0.0, 0.8));
        }
    }

    /**
     * Object handling: occasional large jerks on y/z with x spikes
     * that overshoot the step band (> 4.5) or stay below it (< 2.5).
     */
    void
    emitHandling(double seconds)
    {
        const auto n =
            static_cast<std::size_t>(seconds * trace.sampleRateHz);
        double jerk_left = 0.0;
        double jerk_amp = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            if (jerk_left <= 0.0 && rng.chance(0.01)) {
                jerk_left = rng.uniform(0.2, 0.5);
                jerk_amp = rng.chance(0.5) ? rng.uniform(5.0, 8.0)
                                           : rng.uniform(0.5, 2.0);
            }
            double x = 0.0;
            double y = 0.0;
            if (jerk_left > 0.0) {
                x = jerk_amp;
                y = 0.5 * jerk_amp;
                jerk_left -= dt();
            }
            pushSample(x, y + rng.gaussian(0.0, 0.4),
                       gravityZ + rng.gaussian(0.0, 0.5));
        }
    }

    /**
     * Deliberate double-shake gesture (uWave-style): two 0.4 s bursts
     * of fast (8 Hz), strong (7-9 m/s^2) x-axis oscillation with a
     * 0.4 s pause between them — long enough that a 16-sample
     * analysis window always fits inside the pause regardless of
     * alignment, so the two bursts never fuse. The high frequency
     * keeps the smoothed peaks below the step detector's band, so
     * gestures and steps do not cross-trigger.
     */
    void
    emitGesture()
    {
        const double start = time;
        const double amp = rng.uniform(7.0, 9.0);
        auto burst = [&](double seconds) {
            const auto n = static_cast<std::size_t>(
                seconds * trace.sampleRateHz);
            for (std::size_t i = 0; i < n; ++i) {
                const double w =
                    2.0 * std::numbers::pi * 8.0 * (time - start);
                pushSample(amp * std::sin(w),
                           0.4 * amp * std::sin(w + 1.0), gravityZ);
            }
        };
        burst(0.4);
        emitIdle(0.4);
        burst(0.4);
        addEvent(event_type::gesture, start, time);
        // A beat of stillness after the gesture: two back-to-back
        // gestures would otherwise fuse their bursts into one
        // ambiguous four-burst pattern.
        emitIdle(1.0);
    }

    /** Desk fidgeting: small-amplitude swaying. */
    void
    emitFidget(double seconds)
    {
        const double start_phase = rng.uniform(0.0, 1.0);
        const auto n =
            static_cast<std::size_t>(seconds * trace.sampleRateHz);
        for (std::size_t i = 0; i < n; ++i) {
            const double w =
                2.0 * std::numbers::pi *
                (start_phase + 0.8 * time);
            pushSample(0.6 * std::sin(w), 0.8 * std::cos(w),
                       gravityZ + 0.4 * std::sin(0.5 * w));
        }
    }
};

} // namespace

std::string
humanScenarioName(HumanScenario scenario)
{
    switch (scenario) {
      case HumanScenario::Commute: return "commute";
      case HumanScenario::Retail: return "retail";
      case HumanScenario::Office: return "office";
    }
    return "?";
}

double
humanWalkFraction(HumanScenario scenario)
{
    return profileFor(scenario).walkFraction;
}

Trace
generateHumanTrace(const HumanTraceConfig &config)
{
    if (config.durationSeconds <= 0.0 || config.sampleRateHz <= 0.0)
        throw ConfigError("human trace duration and rate must be "
                          "positive");

    const ScenarioProfile profile = profileFor(config.scenario);
    Builder b(config);

    const double total = config.durationSeconds;
    const double walk_budget = total * profile.walkFraction;
    const double vib_budget = total * profile.vibrationFraction;
    const double handle_budget = total * profile.handlingFraction;
    const double fidget_budget = total * profile.fidgetFraction;
    const double gesture_budget = total * config.gestureFraction;
    const double idle_budget = total - walk_budget - vib_budget -
                               handle_budget - fidget_budget -
                               gesture_budget;

    constexpr int kinds = 6;
    double used[kinds] = {};
    const double budgets[kinds] = {idle_budget,   walk_budget,
                                   vib_budget,    handle_budget,
                                   fidget_budget, gesture_budget};

    while (b.time < total - 2.0) {
        std::vector<double> weights(kinds);
        double remaining = 0.0;
        for (int k = 0; k < kinds; ++k) {
            weights[k] = std::max(budgets[k] - used[k], 0.0);
            remaining += weights[k];
        }
        if (remaining <= 0.0)
            break;

        const auto kind = b.rng.weightedIndex(weights);
        if (kind >= kinds)
            throw InternalError("human generator: bad activity index");
        const double start = b.time;
        const double seconds =
            std::min(b.rng.uniform(5.0, 20.0), total - b.time);

        switch (kind) {
          case 0: b.emitIdle(seconds); break;
          case 1: b.emitWalk(seconds); break;
          case 2: b.emitVibration(seconds); break;
          case 3: b.emitHandling(seconds); break;
          case 4: b.emitFidget(seconds); break;
          case 5: b.emitGesture(); break;
        }
        used[kind] += b.time - start;
        if (kind != 0)
            b.addEvent(event_type::activeSegment, start, b.time);
    }

    if (b.time < total)
        b.emitIdle(total - b.time);

    std::sort(b.trace.events.begin(), b.trace.events.end(),
              [](const GroundTruthEvent &x, const GroundTruthEvent &y) {
                  return x.startTime < y.startTime;
              });
    b.trace.checkInvariants();
    return b.trace;
}

std::vector<Trace>
generateHumanCorpus(double duration_seconds, std::uint64_t seed)
{
    Rng master(seed);
    std::vector<Trace> corpus;
    const HumanScenario scenarios[] = {HumanScenario::Commute,
                                       HumanScenario::Retail,
                                       HumanScenario::Office};
    int subject = 1;
    for (HumanScenario scenario : scenarios) {
        HumanTraceConfig config;
        config.scenario = scenario;
        config.durationSeconds = duration_seconds;
        config.seed = master.fork().uniformInt(1, 1'000'000'000);
        config.name = "human-s" + std::to_string(subject) + "-" +
                      humanScenarioName(scenario);
        corpus.push_back(generateHumanTrace(config));
        ++subject;
    }
    return corpus;
}

} // namespace sidewinder::trace
