/**
 * @file
 * Synthetic human accelerometer traces.
 *
 * Stands in for the 6 hours of traces the paper collected from three
 * individuals "while they perform routine daily activities: morning
 * commute using public transit, working in a retail store, and working
 * in an office. Between 20% and 37% of each trace is spent walking"
 * (Section 4.1).
 *
 * The key property the paper observes on humans (Section 5.5) is that
 * subjects perform many activities that are *not* events of interest
 * but still look like "significant motion" to a generic predefined-
 * activity detector — so the generic condition wakes the phone often
 * while the Sidewinder step condition does not. The generators below
 * therefore mix in non-walking motion (vehicle vibration, object
 * handling, fidgeting) whose x-axis peaks fall outside the step
 * detector's [2.5, 4.5] m/s^2 band.
 */

#ifndef SIDEWINDER_TRACE_HUMAN_GEN_H
#define SIDEWINDER_TRACE_HUMAN_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/types.h"

namespace sidewinder::trace {

/** The three daily-routine scenarios of Section 4.1. */
enum class HumanScenario { Commute, Retail, Office };

/** Printable name of a scenario. */
std::string humanScenarioName(HumanScenario scenario);

/** Parameters of one human recording. */
struct HumanTraceConfig
{
    HumanScenario scenario = HumanScenario::Office;
    /** Recording length in seconds. */
    double durationSeconds = 1200.0;
    /** Accelerometer sampling rate in Hz. */
    double sampleRateHz = 50.0;
    /**
     * Fraction of the trace spent performing the deliberate
     * double-shake gesture (uWave-style, the timeliness scenario of
     * Section 5.4). 0 disables gestures (the paper's own traces).
     */
    double gestureFraction = 0.0;
    /** Seed for the activity script. */
    std::uint64_t seed = 1;
    /** Trace name recorded in the output. */
    std::string name = "human";
};

/**
 * Generate one human recording. Ground-truth events: "step" per step,
 * "walk" per walking segment, "active" per any non-idle motion
 * segment.
 */
Trace generateHumanTrace(const HumanTraceConfig &config);

/**
 * Generate the paper's three-subject corpus (one scenario each:
 * commute, retail, office) with derived per-subject seeds.
 */
std::vector<Trace> generateHumanCorpus(double duration_seconds,
                                       std::uint64_t seed);

/** Walking time fraction targeted for @p scenario (0.20 .. 0.37). */
double humanWalkFraction(HumanScenario scenario);

} // namespace sidewinder::trace

#endif // SIDEWINDER_TRACE_HUMAN_GEN_H
