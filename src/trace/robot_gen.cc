#include "trace/robot_gen.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "support/error.h"
#include "support/rng.h"

namespace sidewinder::trace {

namespace {

/** Device posture baselines (m/s^2), Section 3.7.1 of the paper. */
constexpr double standingZ = 9.81;
constexpr double standingY = 0.0;
constexpr double sittingZ = 8.5;
constexpr double sittingY = 4.5;

/** Per-axis Gaussian sensor noise. */
constexpr double noiseSigma = 0.08;

/** Split of active time across action kinds (Section 4.1). */
constexpr double walkShare = 0.73;
constexpr double transitionShare = 0.24;
constexpr double headbuttShare = 0.03;

/** Step cadence while walking. */
constexpr double stepPeriodSeconds = 0.625;

constexpr double transitionSeconds = 1.5;
constexpr double headbuttSeconds = 0.6;

enum class Action { Idle, Walk, Transition, Headbutt };

/** Mutable state threaded through the script synthesis. */
struct Builder
{
    Trace trace;
    Rng rng;
    bool sitting = false;
    double time = 0.0;

    explicit Builder(const RobotRunConfig &config) : rng(config.seed)
    {
        trace.name = config.name;
        trace.sampleRateHz = config.sampleRateHz;
        trace.channelNames = {"ACC_X", "ACC_Y", "ACC_Z"};
        trace.channels.assign(3, {});
    }

    double dt() const { return 1.0 / trace.sampleRateHz; }

    void
    pushSample(double x, double y, double z)
    {
        trace.channels[0].push_back(x + rng.gaussian(0.0, noiseSigma));
        trace.channels[1].push_back(y + rng.gaussian(0.0, noiseSigma));
        trace.channels[2].push_back(z + rng.gaussian(0.0, noiseSigma));
        time += dt();
    }

    void
    addEvent(const std::string &type, double start, double end)
    {
        trace.events.push_back(GroundTruthEvent{type, start, end});
    }

    double postureY() const { return sitting ? sittingY : standingY; }
    double postureZ() const { return sitting ? sittingZ : standingZ; }

    /** Standing or sitting still for @p seconds. */
    void
    emitIdle(double seconds)
    {
        const std::size_t n =
            static_cast<std::size_t>(seconds * trace.sampleRateHz);
        for (std::size_t i = 0; i < n; ++i)
            pushSample(0.0, postureY(), postureZ());
    }

    /**
     * Walking for @p seconds: per-step x bumps whose filtered peaks
     * land inside the detector band [2.5, 4.5], with gait wobble on
     * the other axes.
     */
    void
    emitWalk(double seconds)
    {
        const double start = time;
        const std::size_t n =
            static_cast<std::size_t>(seconds * trace.sampleRateHz);
        const double step_amp = rng.uniform(3.2, 4.2);
        // Start mid-cycle so the first bump is not adjacent to the
        // previous segment's last one, and drop any bump that would
        // be truncated by the segment end (a cut-off half step would
        // create two peaks inside one refractory window).
        double step_phase = 0.5;
        bool step_logged = false;
        bool bump_fits = true;
        const std::size_t bump_samples = static_cast<std::size_t>(
            0.4 * stepPeriodSeconds * trace.sampleRateHz);

        for (std::size_t i = 0; i < n; ++i) {
            step_phase += dt() / stepPeriodSeconds;
            if (step_phase >= 1.0) {
                step_phase -= 1.0;
                step_logged = false;
                bump_fits = i + bump_samples < n;
            }

            // The x bump occupies the first 40% of each step cycle.
            double x = 0.0;
            if (step_phase < 0.4 && bump_fits) {
                const double s =
                    std::sin(std::numbers::pi * step_phase / 0.4);
                x = step_amp * s * s;
                if (!step_logged && step_phase >= 0.2) {
                    // Peak of the bump: log one ground-truth step.
                    addEvent(event_type::step, time - 0.05,
                             time + 0.05);
                    step_logged = true;
                }
            }

            const double wobble = 2.0 * std::numbers::pi * step_phase;
            const double y =
                postureY() + 0.7 * std::sin(wobble);
            const double z =
                postureZ() + 0.5 * std::sin(2.0 * wobble);
            pushSample(x, y, z);
        }
        addEvent(event_type::walkSegment, start, time);
    }

    /** Smooth sit<->stand posture change over transitionSeconds. */
    void
    emitTransition()
    {
        const double start = time;
        const double from_y = postureY();
        const double from_z = postureZ();
        sitting = !sitting;
        const double to_y = postureY();
        const double to_z = postureZ();

        const std::size_t n = static_cast<std::size_t>(
            transitionSeconds * trace.sampleRateHz);
        for (std::size_t i = 0; i < n; ++i) {
            const double phase =
                static_cast<double>(i) / static_cast<double>(n);
            // Cosine ease between postures; a mild x jolt stays well
            // below the step detector's 2.5 m/s^2 band.
            const double blend =
                0.5 * (1.0 - std::cos(std::numbers::pi * phase));
            const double jolt =
                1.2 * std::sin(std::numbers::pi * phase);
            pushSample(jolt, from_y + (to_y - from_y) * blend,
                       from_z + (to_z - from_z) * blend);
        }
        addEvent(event_type::transition, start, time);
    }

    /** Sudden forward head movement: y dips into [-6.75, -3.75]. */
    void
    emitHeadbutt()
    {
        const double start = time;
        const double depth = rng.uniform(4.3, 6.2);
        const std::size_t n = static_cast<std::size_t>(
            headbuttSeconds * trace.sampleRateHz);
        for (std::size_t i = 0; i < n; ++i) {
            const double phase =
                static_cast<double>(i) / static_cast<double>(n);
            const double s = std::sin(std::numbers::pi * phase);
            pushSample(0.3 * s, postureY() - depth * s * s,
                       postureZ() - 0.4 * s);
        }
        addEvent(event_type::headbutt, start, time);
    }
};

} // namespace

double
robotGroupIdleFraction(int group)
{
    switch (group) {
      case 1: return 0.9;
      case 2: return 0.5;
      case 3: return 0.1;
    }
    throw ConfigError("robot activity group must be 1, 2 or 3");
}

int
robotGroupRunCount(int group)
{
    switch (group) {
      case 1: return 9;
      case 2: return 6;
      case 3: return 3;
    }
    throw ConfigError("robot activity group must be 1, 2 or 3");
}

Trace
generateRobotRun(const RobotRunConfig &config)
{
    if (config.idleFraction < 0.0 || config.idleFraction >= 1.0)
        throw ConfigError("idleFraction must be in [0, 1)");
    if (config.durationSeconds <= 0.0 || config.sampleRateHz <= 0.0)
        throw ConfigError("robot run duration and rate must be positive");

    Builder b(config);

    // Time budgets per category.
    const double total = config.durationSeconds;
    const double idle_budget = total * config.idleFraction;
    const double active_budget = total - idle_budget;
    const double walk_budget = active_budget * walkShare;
    const double transition_budget = active_budget * transitionShare;
    const double headbutt_budget = active_budget * headbuttShare;

    double idle_used = 0.0;
    double walk_used = 0.0;
    double transition_used = 0.0;
    double headbutt_used = 0.0;

    // An action may start only if it completes with a second of
    // trailing context before the trace ends — a transition cut off
    // by the recording boundary is undetectable even when always
    // awake, which would make 100%-recall calibration impossible.
    auto fits = [&](double seconds) {
        return b.time + seconds + 1.0 <= total;
    };

    // The script alternates idle and active segments; the next action
    // is drawn with probability proportional to its remaining budget,
    // which randomizes order (as the paper's scripts did) while
    // converging to the configured time shares.
    while (b.time < total - 1.0) {
        const std::vector<double> weights = {
            std::max(idle_budget - idle_used, 0.0),
            std::max(walk_budget - walk_used, 0.0),
            std::max(transition_budget - transition_used, 0.0),
            std::max(headbutt_budget - headbutt_used, 0.0),
        };
        const double remaining =
            weights[0] + weights[1] + weights[2] + weights[3];
        if (remaining <= 0.0)
            break;

        const double active_start = b.time;
        switch (static_cast<Action>(b.rng.weightedIndex(weights))) {
          case Action::Idle: {
            const double seconds = std::min(
                b.rng.uniform(3.0, 10.0), total - b.time);
            b.emitIdle(seconds);
            idle_used += b.time - active_start;
            continue;
          }
          case Action::Walk: {
            // Walking requires standing.
            const double stand_up =
                b.sitting ? transitionSeconds : 0.0;
            if (!fits(stand_up + 3.0 * stepPeriodSeconds)) {
                b.emitIdle(total - b.time);
                continue;
            }
            if (b.sitting) {
                b.emitTransition();
                transition_used += transitionSeconds;
            }
            const double walk_start = b.time;
            const double seconds = std::min(
                b.rng.uniform(5.0, 14.0), total - b.time - 1.0);
            if (seconds > 2.0 * stepPeriodSeconds)
                b.emitWalk(seconds);
            walk_used += b.time - walk_start;
            break;
          }
          case Action::Transition:
            if (!fits(transitionSeconds)) {
                b.emitIdle(total - b.time);
                continue;
            }
            b.emitTransition();
            transition_used += transitionSeconds;
            break;
          case Action::Headbutt: {
            const double stand_up =
                b.sitting ? transitionSeconds : 0.0;
            if (!fits(stand_up + headbuttSeconds)) {
                b.emitIdle(total - b.time);
                continue;
            }
            if (b.sitting) {
                b.emitTransition();
                transition_used += transitionSeconds;
            }
            b.emitHeadbutt();
            headbutt_used += headbuttSeconds;
            break;
          }
        }
        if (b.time > active_start)
            b.addEvent(event_type::activeSegment, active_start, b.time);
    }

    // Pad the tail with idle so every run has the exact duration.
    if (b.time < total)
        b.emitIdle(total - b.time);

    std::sort(b.trace.events.begin(), b.trace.events.end(),
              [](const GroundTruthEvent &x, const GroundTruthEvent &y) {
                  return x.startTime < y.startTime;
              });
    b.trace.checkInvariants();
    return b.trace;
}

std::vector<Trace>
generateRobotCorpus(double duration_seconds, std::uint64_t seed)
{
    std::vector<Trace> corpus;
    Rng master(seed);
    for (int group = 1; group <= 3; ++group) {
        const int runs = robotGroupRunCount(group);
        for (int run = 0; run < runs; ++run) {
            RobotRunConfig config;
            config.idleFraction = robotGroupIdleFraction(group);
            config.durationSeconds = duration_seconds;
            config.seed = master.fork().uniformInt(1, 1'000'000'000);
            config.name = "robot-g" + std::to_string(group) + "-run" +
                          std::to_string(run);
            corpus.push_back(generateRobotRun(config));
        }
    }
    return corpus;
}

} // namespace sidewinder::trace
