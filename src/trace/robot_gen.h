/**
 * @file
 * Synthetic AIBO ERA-210 accelerometer traces.
 *
 * Stands in for the robotic-dog testbed of Section 4.1 of the paper:
 * a prototype phone on the robot's back records 3-axis accelerometer
 * data while the robot performs scripted runs of five actions —
 * standing idle, walking, sit-to-stand, stand-to-sit, and headbutts —
 * logging start/end of each action as ground truth.
 *
 * Signal signatures are chosen so the paper's detectors (Section 3.7.1)
 * apply verbatim:
 *  - steps: local maxima of low-pass-filtered x acceleration in
 *    [2.5, 4.5] m/s^2;
 *  - posture: standing when z in [9, 11] and y in [-1, 1]; sitting when
 *    z in [7.5, 9.5] and y in [3.5, 5.5];
 *  - headbutts: local y minima in [-6.75, -3.75] m/s^2.
 */

#ifndef SIDEWINDER_TRACE_ROBOT_GEN_H
#define SIDEWINDER_TRACE_ROBOT_GEN_H

#include <cstdint>
#include <string>
#include <vector>

#include "trace/types.h"

namespace sidewinder::trace {

/** Parameters of one scripted robot run. */
struct RobotRunConfig
{
    /** Fraction of run time spent standing idle (0.9 / 0.5 / 0.1). */
    double idleFraction = 0.9;
    /** Run length in seconds. */
    double durationSeconds = 600.0;
    /** Accelerometer sampling rate in Hz. */
    double sampleRateHz = 50.0;
    /** Seed for the randomized action script. */
    std::uint64_t seed = 1;
    /** Trace name recorded in the output. */
    std::string name = "robot-run";
};

/**
 * Generate one scripted robot run.
 *
 * Active (non-idle) time is split 73% walking, 24% sit/stand
 * transitions, 3% headbutts, with the action order randomized
 * (Section 4.1). Ground-truth events emitted: "step" (one per step),
 * "transition", "headbutt", plus "walk" and "active" segment
 * annotations.
 */
Trace generateRobotRun(const RobotRunConfig &config);

/**
 * Generate the paper's 18-run corpus: 9 runs at 90% idle (group 1),
 * 6 at 50% (group 2), 3 at 10% (group 3), with per-run derived seeds.
 *
 * @param duration_seconds Length of every run.
 * @param seed Master seed; runs use independent derived streams.
 */
std::vector<Trace> generateRobotCorpus(double duration_seconds,
                                       std::uint64_t seed);

/** Idle fraction of the paper's activity group @p group (1, 2 or 3). */
double robotGroupIdleFraction(int group);

/** Number of runs the paper executed for @p group (9, 6 or 3). */
int robotGroupRunCount(int group);

} // namespace sidewinder::trace

#endif // SIDEWINDER_TRACE_ROBOT_GEN_H
