#include "trace/types.h"

#include <algorithm>

#include "support/error.h"

namespace sidewinder::trace {

std::size_t
Trace::sampleCount() const
{
    return channels.empty() ? 0 : channels.front().size();
}

double
Trace::durationSeconds() const
{
    if (sampleRateHz <= 0.0)
        return 0.0;
    return static_cast<double>(sampleCount()) / sampleRateHz;
}

double
Trace::timeOf(std::size_t index) const
{
    return static_cast<double>(index) / sampleRateHz;
}

std::size_t
Trace::channelIndex(const std::string &name) const
{
    for (std::size_t i = 0; i < channelNames.size(); ++i)
        if (channelNames[i] == name)
            return i;
    throw ConfigError("trace '" + this->name + "' has no channel '" +
                      name + "'");
}

std::vector<GroundTruthEvent>
Trace::eventsOfType(const std::string &type) const
{
    std::vector<GroundTruthEvent> out;
    for (const auto &ev : events)
        if (ev.type == type)
            out.push_back(ev);
    return out;
}

double
Trace::eventSeconds(const std::string &type) const
{
    double total = 0.0;
    for (const auto &ev : events)
        if (ev.type == type)
            total += ev.duration();
    return total;
}

void
Trace::checkInvariants() const
{
    if (sampleRateHz <= 0.0)
        throw InternalError("trace '" + name + "': non-positive rate");
    if (channelNames.size() != channels.size())
        throw InternalError("trace '" + name +
                            "': channel name/data count mismatch");
    for (const auto &ch : channels)
        if (ch.size() != sampleCount())
            throw InternalError("trace '" + name +
                                "': channel length mismatch");

    const double duration = durationSeconds();
    for (const auto &ev : events) {
        if (ev.startTime < 0.0 || ev.endTime < ev.startTime ||
            ev.startTime > duration + 1e-9)
            throw InternalError("trace '" + name +
                                "': event out of range");
    }
    const bool sorted = std::is_sorted(
        events.begin(), events.end(),
        [](const GroundTruthEvent &a, const GroundTruthEvent &b) {
            return a.startTime < b.startTime;
        });
    if (!sorted)
        throw InternalError("trace '" + name + "': events not sorted");
}

} // namespace sidewinder::trace
