/**
 * @file
 * Trace containers shared by the generators, the hub runtime, and the
 * trace-driven simulator (Section 4 of the paper: "Our evaluation is
 * based on a trace-driven simulation").
 *
 * A Trace is a set of equal-length, equal-rate sample streams (one per
 * sensor channel) plus the ground-truth event annotations the robot /
 * mixing scripts logged.
 */

#ifndef SIDEWINDER_TRACE_TYPES_H
#define SIDEWINDER_TRACE_TYPES_H

#include <cstddef>
#include <string>
#include <vector>

namespace sidewinder::trace {

/** One annotated ground-truth event, e.g. a step or a siren. */
struct GroundTruthEvent
{
    /** Event type label, e.g. "step", "siren", "phrase". */
    std::string type;
    /** Event start, seconds from trace start. */
    double startTime = 0.0;
    /** Event end, seconds from trace start (>= startTime). */
    double endTime = 0.0;

    /** Event midpoint, seconds. */
    double midTime() const { return 0.5 * (startTime + endTime); }

    /** Event duration, seconds. */
    double duration() const { return endTime - startTime; }
};

/** A multi-channel sensor recording with ground-truth annotations. */
struct Trace
{
    /** Human-readable identity, e.g. "robot-g1-run3". */
    std::string name;
    /** Common sampling rate of all channels, Hz. */
    double sampleRateHz = 0.0;
    /** Channel names, e.g. {"ACC_X","ACC_Y","ACC_Z"} or {"AUDIO"}. */
    std::vector<std::string> channelNames;
    /** Per-channel sample arrays; all the same length. */
    std::vector<std::vector<double>> channels;
    /** Ground-truth events, sorted by start time. */
    std::vector<GroundTruthEvent> events;

    /** Number of samples per channel. */
    std::size_t sampleCount() const;

    /** Recording length in seconds. */
    double durationSeconds() const;

    /** Timestamp of sample @p index, seconds from trace start. */
    double timeOf(std::size_t index) const;

    /** Index of the channel named @p name; throws if absent. */
    std::size_t channelIndex(const std::string &name) const;

    /** Events whose type equals @p type, in start-time order. */
    std::vector<GroundTruthEvent>
    eventsOfType(const std::string &type) const;

    /** Total duration covered by events of @p type, seconds. */
    double eventSeconds(const std::string &type) const;

    /** Verify channel lengths agree and events are ordered/in-range. */
    void checkInvariants() const;
};

/** Standard ground-truth event type labels used by the generators. */
namespace event_type {
inline const std::string step = "step";
inline const std::string transition = "transition";
inline const std::string headbutt = "headbutt";
inline const std::string walkSegment = "walk";
inline const std::string activeSegment = "active";
inline const std::string gesture = "gesture";
inline const std::string siren = "siren";
inline const std::string music = "music";
inline const std::string speech = "speech";
inline const std::string phrase = "phrase";
} // namespace event_type

} // namespace sidewinder::trace

#endif // SIDEWINDER_TRACE_TYPES_H
