#include "transport/crc.h"

namespace sidewinder::transport {

std::uint16_t
crc16Step(std::uint16_t crc, std::uint8_t byte)
{
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
        if (crc & 0x8000)
            crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
        else
            crc = static_cast<std::uint16_t>(crc << 1);
    }
    return crc;
}

std::uint16_t
crc16(const std::vector<std::uint8_t> &data)
{
    std::uint16_t crc = 0xFFFF;
    for (std::uint8_t byte : data)
        crc = crc16Step(crc, byte);
    return crc;
}

} // namespace sidewinder::transport
