/**
 * @file
 * CRC-16/CCITT-FALSE checksum used to protect frames on the
 * phone-to-hub serial link.
 */

#ifndef SIDEWINDER_TRANSPORT_CRC_H
#define SIDEWINDER_TRANSPORT_CRC_H

#include <cstdint>
#include <vector>

namespace sidewinder::transport {

/** CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) of @p data. */
std::uint16_t crc16(const std::vector<std::uint8_t> &data);

/** Incremental form: fold @p byte into a running @p crc. */
std::uint16_t crc16Step(std::uint16_t crc, std::uint8_t byte);

} // namespace sidewinder::transport

#endif // SIDEWINDER_TRANSPORT_CRC_H
