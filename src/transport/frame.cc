#include "transport/frame.h"

#include "support/error.h"
#include "transport/crc.h"

namespace sidewinder::transport {

std::vector<std::uint8_t>
encodeFrame(const Frame &frame)
{
    if (frame.payload.size() > maxPayloadBytes)
        throw TransportError("frame payload too large: " +
                             std::to_string(frame.payload.size()));

    std::vector<std::uint8_t> wire;
    wire.reserve(frame.payload.size() + 6);
    wire.push_back(frameSof);
    wire.push_back(static_cast<std::uint8_t>(frame.type));
    wire.push_back(
        static_cast<std::uint8_t>(frame.payload.size() & 0xFF));
    wire.push_back(
        static_cast<std::uint8_t>((frame.payload.size() >> 8) & 0xFF));
    wire.insert(wire.end(), frame.payload.begin(), frame.payload.end());

    // The CRC covers type, length and payload (everything after SOF).
    std::uint16_t crc = 0xFFFF;
    for (std::size_t i = 1; i < wire.size(); ++i)
        crc = crc16Step(crc, wire[i]);
    wire.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xFF));
    wire.push_back(static_cast<std::uint8_t>(crc & 0xFF));
    return wire;
}

void
FrameDecoder::restart(bool count_as_drop)
{
    if (count_as_drop)
        dropped += 4 + payload.size();
    state = State::Sync;
    payload.clear();
}

void
FrameDecoder::feed(std::uint8_t byte)
{
    switch (state) {
      case State::Sync:
        if (byte == frameSof) {
            state = State::Type;
            crcAccum = 0xFFFF;
            payload.clear();
        } else {
            ++dropped;
        }
        return;
      case State::Type:
        type = byte;
        crcAccum = crc16Step(crcAccum, byte);
        if (type < 1 ||
            type > static_cast<std::uint8_t>(MessageType::SensorBatch)) {
            restart(true);
            return;
        }
        state = State::LenLo;
        return;
      case State::LenLo:
        expected = byte;
        crcAccum = crc16Step(crcAccum, byte);
        state = State::LenHi;
        return;
      case State::LenHi:
        expected |= static_cast<std::size_t>(byte) << 8;
        crcAccum = crc16Step(crcAccum, byte);
        if (expected > maxPayloadBytes) {
            restart(true);
            return;
        }
        state = expected == 0 ? State::CrcHi : State::Payload;
        return;
      case State::Payload:
        payload.push_back(byte);
        crcAccum = crc16Step(crcAccum, byte);
        if (payload.size() == expected)
            state = State::CrcHi;
        return;
      case State::CrcHi:
        crcReceived = static_cast<std::uint16_t>(byte) << 8;
        state = State::CrcLo;
        return;
      case State::CrcLo:
        crcReceived |= byte;
        if (crcReceived == crcAccum) {
            Frame frame;
            frame.type = static_cast<MessageType>(type);
            frame.payload = std::move(payload);
            payload = {};
            ready.push_back(std::move(frame));
            restart(false);
        } else {
            restart(true);
        }
        return;
    }
}

void
FrameDecoder::feed(const std::vector<std::uint8_t> &bytes)
{
    for (std::uint8_t byte : bytes)
        feed(byte);
}

std::optional<Frame>
FrameDecoder::poll()
{
    if (ready.empty())
        return std::nullopt;
    Frame frame = std::move(ready.front());
    ready.pop_front();
    return frame;
}

} // namespace sidewinder::transport
