#include "transport/frame.h"

#include "support/error.h"
#include "transport/crc.h"

namespace sidewinder::transport {

std::vector<std::uint8_t>
encodeFrame(const Frame &frame)
{
    if (frame.payload.size() > maxPayloadBytes)
        throw TransportError("frame payload too large: " +
                             std::to_string(frame.payload.size()));

    std::vector<std::uint8_t> wire;
    wire.reserve(frame.payload.size() + 6);
    wire.push_back(frameSof);
    wire.push_back(static_cast<std::uint8_t>(frame.type));
    wire.push_back(
        static_cast<std::uint8_t>(frame.payload.size() & 0xFF));
    wire.push_back(
        static_cast<std::uint8_t>((frame.payload.size() >> 8) & 0xFF));
    wire.insert(wire.end(), frame.payload.begin(), frame.payload.end());

    // The CRC covers type, length and payload (everything after SOF).
    std::uint16_t crc = 0xFFFF;
    for (std::size_t i = 1; i < wire.size(); ++i)
        crc = crc16Step(crc, wire[i]);
    wire.push_back(static_cast<std::uint8_t>((crc >> 8) & 0xFF));
    wire.push_back(static_cast<std::uint8_t>(crc & 0xFF));
    return wire;
}

void
FrameDecoder::fail()
{
    // The SOF that opened this candidate was presumably noise (or the
    // header behind it was corrupted); everything that followed it may
    // be — or contain — a real frame, so rescan instead of discarding.
    ++dropped;
    state = State::Sync;
    payload.clear();
    backlog.insert(backlog.begin(), raw.begin() + 1, raw.end());
    raw.clear();
}

void
FrameDecoder::step(std::uint8_t byte)
{
    if (state != State::Sync)
        raw.push_back(byte);
    switch (state) {
      case State::Sync:
        if (byte == frameSof) {
            state = State::Type;
            crcAccum = 0xFFFF;
            payload.clear();
            raw.assign(1, byte);
            ++candidateEpoch;
        } else {
            ++dropped;
        }
        return;
      case State::Type:
        type = byte;
        crcAccum = crc16Step(crcAccum, byte);
        if (type < 1 ||
            type > static_cast<std::uint8_t>(MessageType::UpdateAck)) {
            fail();
            return;
        }
        state = State::LenLo;
        return;
      case State::LenLo:
        expected = byte;
        crcAccum = crc16Step(crcAccum, byte);
        state = State::LenHi;
        return;
      case State::LenHi:
        expected |= static_cast<std::size_t>(byte) << 8;
        crcAccum = crc16Step(crcAccum, byte);
        if (expected > maxPayloadBytes) {
            fail();
            return;
        }
        state = expected == 0 ? State::CrcHi : State::Payload;
        return;
      case State::Payload:
        payload.push_back(byte);
        crcAccum = crc16Step(crcAccum, byte);
        if (payload.size() == expected)
            state = State::CrcHi;
        return;
      case State::CrcHi:
        crcReceived = static_cast<std::uint16_t>(byte) << 8;
        state = State::CrcLo;
        return;
      case State::CrcLo:
        crcReceived |= byte;
        if (crcReceived == crcAccum) {
            Frame frame;
            frame.type = static_cast<MessageType>(type);
            frame.payload = std::move(payload);
            payload = {};
            ready.push_back(std::move(frame));
            state = State::Sync;
            raw.clear();
        } else {
            fail();
        }
        return;
    }
}

void
FrameDecoder::drain()
{
    // fail() pushes a candidate's bytes back onto the front of the
    // backlog; each pass permanently consumes at least that
    // candidate's SOF, so this terminates.
    if (draining)
        return;
    draining = true;
    while (!backlog.empty()) {
        const std::uint8_t byte = backlog.front();
        backlog.pop_front();
        step(byte);
    }
    draining = false;
}

void
FrameDecoder::feed(std::uint8_t byte)
{
    backlog.push_back(byte);
    drain();
}

void
FrameDecoder::feed(const std::vector<std::uint8_t> &bytes)
{
    backlog.insert(backlog.end(), bytes.begin(), bytes.end());
    drain();
}

void
FrameDecoder::resync()
{
    if (state == State::Sync)
        return;
    fail();
    drain();
}

void
FrameDecoder::tickStall(double now, double timeout_seconds)
{
    if (state == State::Sync) {
        stallSince = -1.0;
        return;
    }
    if (stallSince < 0.0 || stallObservedEpoch != candidateEpoch) {
        stallObservedEpoch = candidateEpoch;
        stallSince = now;
        return;
    }
    if (now - stallSince > timeout_seconds) {
        resync();
        stallSince = -1.0;
    }
}

std::optional<Frame>
FrameDecoder::poll()
{
    if (ready.empty())
        return std::nullopt;
    Frame frame = std::move(ready.front());
    ready.pop_front();
    return frame;
}

} // namespace sidewinder::transport
