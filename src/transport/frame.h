/**
 * @file
 * Framing layer of the phone-to-hub serial protocol.
 *
 * The prototype in the paper connects the Nexus 4 and the
 * microcontroller "over the UART port made available by the Nexus 4
 * debugging interface" (Section 3.4). A raw UART is an unreliable byte
 * pipe, so every message travels inside a frame:
 *
 *     SOF(0x7E) | type(1) | length(2, LE) | payload | crc16(2, BE)
 *
 * The decoder resynchronizes by scanning for SOF after any CRC or
 * length violation, counting the bytes it had to discard.
 */

#ifndef SIDEWINDER_TRANSPORT_FRAME_H
#define SIDEWINDER_TRANSPORT_FRAME_H

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace sidewinder::transport {

/** Message categories carried in a frame header. */
enum class MessageType : std::uint8_t {
    /** Phone -> hub: install a wake-up condition (IL text payload). */
    ConfigPush = 1,
    /** Hub -> phone: condition installed. */
    ConfigAck = 2,
    /** Hub -> phone: condition rejected (reason text payload). */
    ConfigReject = 3,
    /** Phone -> hub: remove a previously installed condition. */
    ConfigRemove = 4,
    /** Hub -> phone: wake-up with condition id and raw sensor data. */
    WakeUp = 5,
    /**
     * Hub -> phone: a batch of buffered sensor samples (the Batching
     * configuration of Section 4.2 and the raw-data streaming of
     * Section 3.8).
     */
    SensorBatch = 6,
};

/** Start-of-frame marker byte. */
constexpr std::uint8_t frameSof = 0x7E;

/** Largest payload a frame may carry. */
constexpr std::size_t maxPayloadBytes = 60000;

/** One decoded (or to-be-encoded) frame. */
struct Frame
{
    MessageType type = MessageType::ConfigPush;
    std::vector<std::uint8_t> payload;

    bool
    operator==(const Frame &other) const
    {
        return type == other.type && payload == other.payload;
    }
};

/**
 * Encode @p frame into its wire bytes.
 * @throws TransportError when the payload exceeds maxPayloadBytes.
 */
std::vector<std::uint8_t> encodeFrame(const Frame &frame);

/**
 * Streaming decoder: feed raw bytes, poll for completed frames.
 * Corrupt input never throws — bad bytes are skipped and counted so a
 * noisy link degrades instead of wedging the hub.
 */
class FrameDecoder
{
  public:
    /** Feed one received byte. */
    void feed(std::uint8_t byte);

    /** Feed a span of received bytes. */
    void feed(const std::vector<std::uint8_t> &bytes);

    /** Retrieve the next completed frame, if any. */
    std::optional<Frame> poll();

    /** Bytes discarded during resynchronization so far. */
    std::size_t droppedBytes() const { return dropped; }

  private:
    enum class State { Sync, Type, LenLo, LenHi, Payload, CrcHi, CrcLo };

    void restart(bool count_as_drop);

    State state = State::Sync;
    std::uint8_t type = 0;
    std::size_t expected = 0;
    std::vector<std::uint8_t> payload;
    std::uint16_t crcAccum = 0;
    std::uint16_t crcReceived = 0;
    std::size_t dropped = 0;
    std::deque<Frame> ready;
};

} // namespace sidewinder::transport

#endif // SIDEWINDER_TRANSPORT_FRAME_H
