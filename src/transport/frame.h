/**
 * @file
 * Framing layer of the phone-to-hub serial protocol.
 *
 * The prototype in the paper connects the Nexus 4 and the
 * microcontroller "over the UART port made available by the Nexus 4
 * debugging interface" (Section 3.4). A raw UART is an unreliable byte
 * pipe, so every message travels inside a frame:
 *
 *     SOF(0x7E) | type(1) | length(2, LE) | payload | crc16(2, BE)
 *
 * The decoder resynchronizes after any CRC or length violation by
 * rescanning the failed candidate's bytes for embedded frames (an SOF
 * byte inside noise or a corrupted header must not swallow the intact
 * frame that follows), counting the bytes it had to discard. Because a
 * corrupted length field can promise more payload than will ever
 * arrive, receivers poll tickStall() with their clock so a wedged
 * candidate is abandoned instead of deafening the link.
 */

#ifndef SIDEWINDER_TRANSPORT_FRAME_H
#define SIDEWINDER_TRANSPORT_FRAME_H

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

namespace sidewinder::transport {

/** Message categories carried in a frame header. */
enum class MessageType : std::uint8_t {
    /** Phone -> hub: install a wake-up condition (IL text payload). */
    ConfigPush = 1,
    /** Hub -> phone: condition installed. */
    ConfigAck = 2,
    /** Hub -> phone: condition rejected (reason text payload). */
    ConfigReject = 3,
    /** Phone -> hub: remove a previously installed condition. */
    ConfigRemove = 4,
    /** Hub -> phone: wake-up with condition id and raw sensor data. */
    WakeUp = 5,
    /**
     * Hub -> phone: a batch of buffered sensor samples (the Batching
     * configuration of Section 4.2 and the raw-data streaming of
     * Section 3.8).
     */
    SensorBatch = 6,
    /**
     * Either direction: reliable-transport data — a 16-bit sequence
     * number followed by the wrapped inner frame (transport/reliable.h).
     */
    Reliable = 7,
    /** Either direction: acknowledgement of one Reliable sequence. */
    LinkAck = 8,
    /**
     * Hub -> phone: periodic liveness beacon carrying the hub's boot
     * epoch, so the phone can detect both silence (hub dead or link
     * down) and a restart that lost all engine state.
     */
    Heartbeat = 9,
    /**
     * Phone -> hub: open a live-reconfiguration transaction at a new
     * config epoch. Subsequent DeltaPush frames stage plans in the
     * hub's shadow (B) slot while the live (A) plans keep executing.
     */
    UpdateBegin = 10,
    /**
     * Phone -> hub: one condition's plan as a delta — nodes whose
     * canonical shareKey is already live on the hub travel as 8-byte
     * hash references instead of full statements (transport/messages.h).
     */
    DeltaPush = 11,
    /**
     * Phone -> hub: atomically swap every staged plan live (the A/B
     * commit) and bump the hub's config epoch.
     */
    UpdateCommit = 12,
    /**
     * Phone -> hub: abandon the open transaction (e.g. the phone saw
     * the hub's heartbeats vanish mid-update and will retry later).
     */
    UpdateAbort = 13,
    /**
     * Hub -> phone: outcome of an update transaction — committed,
     * rolled back (reason text), or stale (epoch already superseded).
     */
    UpdateAck = 14,
};

/** Start-of-frame marker byte. */
constexpr std::uint8_t frameSof = 0x7E;

/**
 * Largest payload a frame may carry. Kept close to the largest frame
 * the system actually ships (a 1024-sample SensorBatch is ~2.1 KB, a
 * WakeUp with raw history ~1.6 KB): the decoder rejects any claimed
 * length above this, so a corrupted header can hold the link hostage
 * for at most ~0.36 s at 115200 baud before the CRC check fails the
 * candidate and resynchronization rescans its bytes.
 */
constexpr std::size_t maxPayloadBytes = 4096;

/**
 * How long a receiver lets one frame candidate sit unfinished before
 * tickStall() abandons it — comfortably above the transfer time of
 * the largest frame the system actually ships at 115200 baud, far
 * below the supervisor's death-detection threshold.
 */
constexpr double frameStallTimeoutSeconds = 1.0;

/** One decoded (or to-be-encoded) frame. */
struct Frame
{
    MessageType type = MessageType::ConfigPush;
    std::vector<std::uint8_t> payload;

    bool
    operator==(const Frame &other) const
    {
        return type == other.type && payload == other.payload;
    }
};

/**
 * Encode @p frame into its wire bytes.
 * @throws TransportError when the payload exceeds maxPayloadBytes.
 */
std::vector<std::uint8_t> encodeFrame(const Frame &frame);

/**
 * Streaming decoder: feed raw bytes, poll for completed frames.
 * Corrupt input never throws — bad bytes are skipped and counted so a
 * noisy link degrades instead of wedging the hub.
 */
class FrameDecoder
{
  public:
    /** Feed one received byte. */
    void feed(std::uint8_t byte);

    /** Feed a span of received bytes. */
    void feed(const std::vector<std::uint8_t> &bytes);

    /** Retrieve the next completed frame, if any. */
    std::optional<Frame> poll();

    /** Bytes discarded during resynchronization so far. */
    std::size_t droppedBytes() const { return dropped; }

    /** True while partway through a frame candidate. */
    bool midFrame() const { return state != State::Sync; }

    /**
     * Abandon the current frame candidate (its SOF was presumably
     * noise) and rescan its remaining bytes for embedded frames. Safe
     * to call any time; a no-op between frames.
     */
    void resync();

    /**
     * Stall watchdog: resync() a candidate that has been pending since
     * before @p now - @p timeout_seconds. Receivers call this from
     * their poll loop so a corrupted length field that promises more
     * payload than will ever arrive cannot deafen the link for the
     * rest of the run.
     */
    void tickStall(double now,
                   double timeout_seconds = frameStallTimeoutSeconds);

  private:
    enum class State { Sync, Type, LenLo, LenHi, Payload, CrcHi, CrcLo };

    void step(std::uint8_t byte);
    void drain();
    void fail();

    State state = State::Sync;
    std::uint8_t type = 0;
    std::size_t expected = 0;
    std::vector<std::uint8_t> payload;
    std::uint16_t crcAccum = 0;
    std::uint16_t crcReceived = 0;
    std::size_t dropped = 0;
    std::deque<Frame> ready;
    /** Bytes of the current candidate, SOF included. */
    std::vector<std::uint8_t> raw;
    /** Bytes awaiting (re)scan; drained before feed() returns. */
    std::deque<std::uint8_t> backlog;
    bool draining = false;
    /** Candidates opened so far; identifies the stalled one. */
    std::uint64_t candidateEpoch = 0;
    std::uint64_t stallObservedEpoch = 0;
    double stallSince = -1.0;
};

} // namespace sidewinder::transport

#endif // SIDEWINDER_TRANSPORT_FRAME_H
