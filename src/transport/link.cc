#include "transport/link.h"

#include <algorithm>

#include "support/error.h"

namespace sidewinder::transport {

UartLink::UartLink(double baud_rate) : baudRate(baud_rate)
{
    if (!(baud_rate > 0.0))
        throw TransportError("baud rate must be positive");
}

double
UartLink::transferSeconds(std::size_t byte_count) const
{
    // 8N1: start bit + 8 data bits + stop bit per byte.
    return static_cast<double>(byte_count) * 10.0 / baudRate;
}

void
UartLink::send(const std::vector<std::uint8_t> &bytes, double now)
{
    double start = std::max(now, lineBusyUntil);
    for (std::uint8_t byte : bytes) {
        const double done = start + transferSeconds(1);
        const std::uint8_t delivered = corrupt ? corrupt(byte) : byte;
        if (delivered != byte)
            ++corruptedCount;
        inFlight.push_back(InFlight{delivered, done});
        start = done;
    }
    lineBusyUntil = start;
}

void
UartLink::sendFrame(const Frame &frame, double now)
{
    if (dropFrame && dropFrame()) {
        ++droppedFrameCount;
        return;
    }
    send(encodeFrame(frame), now);
}

std::vector<std::uint8_t>
UartLink::receive(double now)
{
    std::vector<std::uint8_t> out;
    while (!inFlight.empty() &&
           inFlight.front().deliveryTime <= now + 1e-12) {
        out.push_back(inFlight.front().byte);
        inFlight.pop_front();
    }
    return out;
}

std::size_t
UartLink::pendingBytes(double now) const
{
    std::size_t count = 0;
    for (const auto &entry : inFlight)
        if (entry.deliveryTime > now + 1e-12)
            ++count;
    return count;
}

} // namespace sidewinder::transport
