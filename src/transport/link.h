/**
 * @file
 * Simulated UART link with baud-rate timing and fault injection.
 *
 * Models the serial connection of the prototype (Section 3.4): a
 * byte pipe whose delivery time is bounded by the configured baud
 * rate. The paper notes the link "provides sufficient bandwidth to
 * support low bit-rate sensors"; bandwidthBitsPerSecond() lets callers
 * check that claim for their own sensor mix.
 */

#ifndef SIDEWINDER_TRANSPORT_LINK_H
#define SIDEWINDER_TRANSPORT_LINK_H

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "transport/frame.h"

namespace sidewinder::transport {

/**
 * One direction of a simulated UART connection.
 *
 * Bytes written with send() become available to receive() only after
 * the serialization delay implied by the baud rate (8N1 framing: 10
 * bit times per byte). An optional corruption hook lets tests flip
 * bits in transit to exercise the decoder's resynchronization.
 */
class UartLink
{
  public:
    /** @param baud_rate Line rate in bits/second; must be positive. */
    explicit UartLink(double baud_rate);

    /** Queue @p bytes for transmission starting at time @p now. */
    void send(const std::vector<std::uint8_t> &bytes, double now);

    /** Queue an encoded frame for transmission at time @p now. */
    void sendFrame(const Frame &frame, double now);

    /** Bytes fully delivered by time @p now, in order. */
    std::vector<std::uint8_t> receive(double now);

    /** Seconds needed to serialize @p byte_count bytes. */
    double transferSeconds(std::size_t byte_count) const;

    /** Usable payload bandwidth in bits/second (8 of every 10 bits). */
    double bandwidthBitsPerSecond() const { return baudRate * 0.8; }

    /**
     * Install a per-byte corruption hook; it receives the byte and
     * returns the (possibly corrupted) byte to deliver. Installed by
     * sim::armLink() from a seeded FaultPlan so every corruption
     * pattern is reproducible (tests may also install ad-hoc hooks).
     */
    void
    setCorruptor(std::function<std::uint8_t(std::uint8_t)> corruptor)
    {
        corrupt = std::move(corruptor);
    }

    /**
     * Install a per-frame loss hook consulted by sendFrame(); when it
     * returns true the whole frame silently vanishes (models a TX
     * overrun or a receiver asleep during the burst). Raw send() calls
     * are not affected.
     */
    void
    setFrameDropper(std::function<bool()> dropper)
    {
        dropFrame = std::move(dropper);
    }

    /** Bytes the corruption hook actually changed so far. */
    std::size_t corruptedBytes() const { return corruptedCount; }

    /** Whole frames the loss hook swallowed so far. */
    std::size_t droppedFrames() const { return droppedFrameCount; }

    /** Bytes still in flight at time @p now. */
    std::size_t pendingBytes(double now) const;

    /**
     * Time the transmitter becomes free (i.e. when the last queued
     * byte finishes serializing). Lets a sender compute the true
     * delivery completion of a frame it just queued behind earlier
     * traffic — the reliable channel bases its ack deadlines on this.
     */
    double busyUntil() const { return lineBusyUntil; }

  private:
    struct InFlight
    {
        std::uint8_t byte;
        double deliveryTime;
    };

    double baudRate;
    /** Time the transmitter becomes free again. */
    double lineBusyUntil = 0.0;
    std::deque<InFlight> inFlight;
    std::function<std::uint8_t(std::uint8_t)> corrupt;
    std::function<bool()> dropFrame;
    std::size_t corruptedCount = 0;
    std::size_t droppedFrameCount = 0;
};

/**
 * A full-duplex connection: the phone-side and hub-side endpoints the
 * sensor manager and hub runtime talk through.
 */
class LinkPair
{
  public:
    /** Create both directions at the same @p baud_rate. */
    explicit LinkPair(double baud_rate)
        : phoneToHubLink(baud_rate), hubToPhoneLink(baud_rate)
    {}

    /** Phone -> hub direction. */
    UartLink &phoneToHub() { return phoneToHubLink; }

    /** Hub -> phone direction. */
    UartLink &hubToPhone() { return hubToPhoneLink; }

  private:
    UartLink phoneToHubLink;
    UartLink hubToPhoneLink;
};

} // namespace sidewinder::transport

#endif // SIDEWINDER_TRANSPORT_LINK_H
