#include "transport/messages.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/error.h"

namespace sidewinder::transport {

namespace {

/** Little-endian primitive writer over a growing byte vector. */
class Writer
{
  public:
    void
    u32(std::uint32_t value)
    {
        for (int i = 0; i < 4; ++i)
            bytes.push_back(
                static_cast<std::uint8_t>((value >> (8 * i)) & 0xFF));
    }

    void i32(std::int32_t value) { u32(static_cast<std::uint32_t>(value)); }

    void
    f64(double value)
    {
        std::uint64_t raw;
        static_assert(sizeof(raw) == sizeof(value));
        std::memcpy(&raw, &value, sizeof(raw));
        for (int i = 0; i < 8; ++i)
            bytes.push_back(
                static_cast<std::uint8_t>((raw >> (8 * i)) & 0xFF));
    }

    void
    text(const std::string &value)
    {
        u32(static_cast<std::uint32_t>(value.size()));
        bytes.insert(bytes.end(), value.begin(), value.end());
    }

    std::vector<std::uint8_t> bytes;
};

/** Bounds-checked little-endian reader over a frame payload. */
class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t> &bytes)
        : bytes(bytes)
    {}

    std::uint8_t
    u8()
    {
        need(1);
        return bytes[pos++];
    }

    std::uint32_t
    u32()
    {
        need(4);
        std::uint32_t value = 0;
        for (int i = 0; i < 4; ++i)
            value |= static_cast<std::uint32_t>(bytes[pos++]) << (8 * i);
        return value;
    }

    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }

    double
    f64()
    {
        need(8);
        std::uint64_t raw = 0;
        for (int i = 0; i < 8; ++i)
            raw |= static_cast<std::uint64_t>(bytes[pos++]) << (8 * i);
        double value;
        std::memcpy(&value, &raw, sizeof(value));
        return value;
    }

    std::string
    text()
    {
        const std::uint32_t length = u32();
        need(length);
        std::string value(bytes.begin() + static_cast<long>(pos),
                          bytes.begin() + static_cast<long>(pos + length));
        pos += length;
        return value;
    }

    void
    expectEnd() const
    {
        if (pos != bytes.size())
            throw TransportError("message payload has trailing bytes");
    }

  private:
    void
    need(std::size_t count) const
    {
        if (pos + count > bytes.size())
            throw TransportError("message payload truncated");
    }

    const std::vector<std::uint8_t> &bytes;
    std::size_t pos = 0;
};

void
expectType(const Frame &frame, MessageType type, const char *what)
{
    if (frame.type != type)
        throw TransportError(std::string("frame is not a ") + what +
                             " message");
}

} // namespace

Frame
encodeConfigPush(const ConfigPushMessage &message)
{
    Writer w;
    w.i32(message.conditionId);
    w.text(message.ilText);
    return Frame{MessageType::ConfigPush, std::move(w.bytes)};
}

Frame
encodeConfigAck(const ConfigAckMessage &message)
{
    Writer w;
    w.i32(message.conditionId);
    return Frame{MessageType::ConfigAck, std::move(w.bytes)};
}

Frame
encodeConfigReject(const ConfigRejectMessage &message)
{
    Writer w;
    w.i32(message.conditionId);
    w.text(message.reason);
    return Frame{MessageType::ConfigReject, std::move(w.bytes)};
}

Frame
encodeConfigRemove(const ConfigRemoveMessage &message)
{
    Writer w;
    w.i32(message.conditionId);
    return Frame{MessageType::ConfigRemove, std::move(w.bytes)};
}

Frame
encodeWakeUp(const WakeUpMessage &message)
{
    Writer w;
    w.i32(message.conditionId);
    w.f64(message.timestamp);
    w.f64(message.triggerValue);
    w.u32(static_cast<std::uint32_t>(message.rawData.size()));
    for (double v : message.rawData)
        w.f64(v);
    return Frame{MessageType::WakeUp, std::move(w.bytes)};
}

Frame
encodeSensorBatch(const SensorBatchMessage &message)
{
    if (!(message.scale > 0.0))
        throw TransportError("sensor batch scale must be positive");

    Writer w;
    w.i32(message.channelIndex);
    w.f64(message.firstTimestamp);
    w.f64(message.sampleRateHz);
    w.f64(message.scale);
    w.u32(static_cast<std::uint32_t>(message.samples.size()));
    for (double v : message.samples) {
        const double raw = std::round(v / message.scale);
        const auto clamped = static_cast<std::int16_t>(
            std::clamp(raw, -32768.0, 32767.0));
        const auto bits = static_cast<std::uint16_t>(clamped);
        w.bytes.push_back(static_cast<std::uint8_t>(bits & 0xFF));
        w.bytes.push_back(
            static_cast<std::uint8_t>((bits >> 8) & 0xFF));
    }
    return Frame{MessageType::SensorBatch, std::move(w.bytes)};
}

Frame
encodeHeartbeat(const HeartbeatMessage &message)
{
    Writer w;
    w.u32(message.bootId);
    w.f64(message.uptimeSeconds);
    return Frame{MessageType::Heartbeat, std::move(w.bytes)};
}

HeartbeatMessage
decodeHeartbeat(const Frame &frame)
{
    expectType(frame, MessageType::Heartbeat, "Heartbeat");
    Reader r(frame.payload);
    HeartbeatMessage message;
    message.bootId = r.u32();
    message.uptimeSeconds = r.f64();
    r.expectEnd();
    return message;
}

namespace {

Frame
encodeEpochOnly(MessageType type, std::uint32_t epoch)
{
    Writer w;
    w.u32(epoch);
    return Frame{type, std::move(w.bytes)};
}

std::uint32_t
decodeEpochOnly(const Frame &frame, MessageType type, const char *what)
{
    expectType(frame, type, what);
    Reader r(frame.payload);
    const std::uint32_t epoch = r.u32();
    r.expectEnd();
    return epoch;
}

} // namespace

Frame
encodeUpdateBegin(const UpdateBeginMessage &message)
{
    return encodeEpochOnly(MessageType::UpdateBegin, message.epoch);
}

UpdateBeginMessage
decodeUpdateBegin(const Frame &frame)
{
    return UpdateBeginMessage{
        decodeEpochOnly(frame, MessageType::UpdateBegin, "UpdateBegin")};
}

Frame
encodeUpdateCommit(const UpdateCommitMessage &message)
{
    return encodeEpochOnly(MessageType::UpdateCommit, message.epoch);
}

UpdateCommitMessage
decodeUpdateCommit(const Frame &frame)
{
    return UpdateCommitMessage{decodeEpochOnly(
        frame, MessageType::UpdateCommit, "UpdateCommit")};
}

Frame
encodeUpdateAbort(const UpdateAbortMessage &message)
{
    return encodeEpochOnly(MessageType::UpdateAbort, message.epoch);
}

UpdateAbortMessage
decodeUpdateAbort(const Frame &frame)
{
    return UpdateAbortMessage{
        decodeEpochOnly(frame, MessageType::UpdateAbort, "UpdateAbort")};
}

Frame
encodeUpdateAck(const UpdateAckMessage &message)
{
    Writer w;
    w.u32(message.epoch);
    w.bytes.push_back(static_cast<std::uint8_t>(message.status));
    w.text(message.reason);
    return Frame{MessageType::UpdateAck, std::move(w.bytes)};
}

UpdateAckMessage
decodeUpdateAck(const Frame &frame)
{
    expectType(frame, MessageType::UpdateAck, "UpdateAck");
    Reader r(frame.payload);
    UpdateAckMessage message;
    message.epoch = r.u32();
    const std::uint8_t status = r.u8();
    if (status > static_cast<std::uint8_t>(UpdateStatus::Stale))
        throw TransportError("UpdateAck status out of range");
    message.status = static_cast<UpdateStatus>(status);
    message.reason = r.text();
    r.expectEnd();
    return message;
}

Frame
encodeDeltaPush(const DeltaPushMessage &message)
{
    Writer w;
    w.u32(message.epoch);
    w.i32(message.conditionId);
    w.u32(static_cast<std::uint32_t>(message.channelNames.size()));
    for (const std::string &name : message.channelNames)
        w.text(name);
    w.u32(static_cast<std::uint32_t>(message.entries.size()));
    for (const DeltaNodeEntry &entry : message.entries) {
        w.bytes.push_back(entry.reused ? 1 : 0);
        if (entry.reused) {
            for (int i = 0; i < 8; ++i)
                w.bytes.push_back(static_cast<std::uint8_t>(
                    (entry.keyHash >> (8 * i)) & 0xFF));
            continue;
        }
        w.text(entry.algorithm);
        w.u32(static_cast<std::uint32_t>(entry.params.size()));
        for (double p : entry.params)
            w.f64(p);
        w.u32(static_cast<std::uint32_t>(entry.inputs.size()));
        for (std::int32_t ref : entry.inputs)
            w.i32(ref);
    }
    w.u32(message.outEntry);
    return Frame{MessageType::DeltaPush, std::move(w.bytes)};
}

DeltaPushMessage
decodeDeltaPush(const Frame &frame)
{
    expectType(frame, MessageType::DeltaPush, "DeltaPush");
    Reader r(frame.payload);
    DeltaPushMessage message;
    message.epoch = r.u32();
    message.conditionId = r.i32();
    const std::uint32_t channels = r.u32();
    message.channelNames.reserve(channels);
    for (std::uint32_t i = 0; i < channels; ++i)
        message.channelNames.push_back(r.text());
    const std::uint32_t count = r.u32();
    message.entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        DeltaNodeEntry entry;
        entry.reused = r.u8() != 0;
        if (entry.reused) {
            for (int b = 0; b < 8; ++b)
                entry.keyHash |= static_cast<std::uint64_t>(r.u8())
                                 << (8 * b);
        } else {
            entry.algorithm = r.text();
            const std::uint32_t params = r.u32();
            entry.params.reserve(params);
            for (std::uint32_t p = 0; p < params; ++p)
                entry.params.push_back(r.f64());
            const std::uint32_t inputs = r.u32();
            entry.inputs.reserve(inputs);
            for (std::uint32_t in = 0; in < inputs; ++in) {
                const std::int32_t ref = r.i32();
                // A shipped node may only consume channels or entries
                // that precede it — the wire order is topological.
                if (ref >= static_cast<std::int32_t>(i))
                    throw TransportError(
                        "DeltaPush entry references a later entry");
                if (ref < 0 &&
                    static_cast<std::uint32_t>(-(ref + 1)) >= channels)
                    throw TransportError(
                        "DeltaPush channel reference out of range");
                entry.inputs.push_back(ref);
            }
        }
        message.entries.push_back(std::move(entry));
    }
    message.outEntry = r.u32();
    if (message.outEntry >= count)
        throw TransportError("DeltaPush OUT entry out of range");
    r.expectEnd();
    return message;
}

std::size_t
deltaPushWireBytes(const DeltaPushMessage &message)
{
    // SOF+type+len+crc (6) + the encoded payload.
    return 6 + encodeDeltaPush(message).payload.size();
}

std::size_t
configPushWireBytes(const ConfigPushMessage &message)
{
    // SOF+type+len+crc (6) + id (4) + text length prefix (4) + text.
    return 6 + 4 + 4 + message.ilText.size();
}

SensorBatchMessage
decodeSensorBatch(const Frame &frame)
{
    expectType(frame, MessageType::SensorBatch, "SensorBatch");
    Reader r(frame.payload);
    SensorBatchMessage message;
    message.channelIndex = r.i32();
    message.firstTimestamp = r.f64();
    message.sampleRateHz = r.f64();
    message.scale = r.f64();
    const std::uint32_t count = r.u32();
    message.samples.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        const auto lo = static_cast<std::uint16_t>(r.u8());
        const auto hi = static_cast<std::uint16_t>(r.u8());
        const auto bits = static_cast<std::uint16_t>(lo | (hi << 8));
        message.samples.push_back(
            static_cast<double>(static_cast<std::int16_t>(bits)) *
            message.scale);
    }
    r.expectEnd();
    return message;
}

std::size_t
sensorBatchWireBytes(std::size_t sample_count,
                     std::size_t samples_per_frame)
{
    if (samples_per_frame == 0)
        throw TransportError("samples_per_frame must be positive");
    // Per frame: SOF+type+len+crc (6) + header (4+8+8+8+4 = 32) +
    // 2 bytes per sample.
    const std::size_t frames =
        (sample_count + samples_per_frame - 1) / samples_per_frame;
    return frames * (6 + 32) + sample_count * 2;
}

bool
canStreamContinuously(double usable_bits_per_second,
                      double sample_rate_hz)
{
    const std::size_t per_second_bytes =
        sensorBatchWireBytes(static_cast<std::size_t>(sample_rate_hz));
    return static_cast<double>(per_second_bytes) * 8.0 <=
           usable_bits_per_second;
}

ConfigPushMessage
decodeConfigPush(const Frame &frame)
{
    expectType(frame, MessageType::ConfigPush, "ConfigPush");
    Reader r(frame.payload);
    ConfigPushMessage message;
    message.conditionId = r.i32();
    message.ilText = r.text();
    r.expectEnd();
    return message;
}

ConfigAckMessage
decodeConfigAck(const Frame &frame)
{
    expectType(frame, MessageType::ConfigAck, "ConfigAck");
    Reader r(frame.payload);
    ConfigAckMessage message;
    message.conditionId = r.i32();
    r.expectEnd();
    return message;
}

ConfigRejectMessage
decodeConfigReject(const Frame &frame)
{
    expectType(frame, MessageType::ConfigReject, "ConfigReject");
    Reader r(frame.payload);
    ConfigRejectMessage message;
    message.conditionId = r.i32();
    message.reason = r.text();
    r.expectEnd();
    return message;
}

ConfigRemoveMessage
decodeConfigRemove(const Frame &frame)
{
    expectType(frame, MessageType::ConfigRemove, "ConfigRemove");
    Reader r(frame.payload);
    ConfigRemoveMessage message;
    message.conditionId = r.i32();
    r.expectEnd();
    return message;
}

WakeUpMessage
decodeWakeUp(const Frame &frame)
{
    expectType(frame, MessageType::WakeUp, "WakeUp");
    Reader r(frame.payload);
    WakeUpMessage message;
    message.conditionId = r.i32();
    message.timestamp = r.f64();
    message.triggerValue = r.f64();
    const std::uint32_t count = r.u32();
    message.rawData.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i)
        message.rawData.push_back(r.f64());
    r.expectEnd();
    return message;
}

} // namespace sidewinder::transport
