/**
 * @file
 * Typed messages carried over the framed serial link, with their
 * payload (de)serialization.
 */

#ifndef SIDEWINDER_TRANSPORT_MESSAGES_H
#define SIDEWINDER_TRANSPORT_MESSAGES_H

#include <cstdint>
#include <string>
#include <vector>

#include "transport/frame.h"

namespace sidewinder::transport {

/** Phone -> hub: install a wake-up condition. */
struct ConfigPushMessage
{
    /** Phone-assigned identifier of the condition. */
    std::int32_t conditionId = 0;
    /** Intermediate-language text of the condition. */
    std::string ilText;
};

/** Hub -> phone: result of a ConfigPush. */
struct ConfigAckMessage
{
    std::int32_t conditionId = 0;
};

/** Hub -> phone: a ConfigPush was rejected. */
struct ConfigRejectMessage
{
    std::int32_t conditionId = 0;
    /** Human-readable reason (validation or capability failure). */
    std::string reason;
};

/** Phone -> hub: remove an installed condition. */
struct ConfigRemoveMessage
{
    std::int32_t conditionId = 0;
};

/** Hub -> phone: a wake-up condition fired. */
struct WakeUpMessage
{
    std::int32_t conditionId = 0;
    /** Hub timestamp of the triggering value, seconds. */
    double timestamp = 0.0;
    /** Value that reached OUT. */
    double triggerValue = 0.0;
    /**
     * Recent raw samples of the condition's primary channel, oldest
     * first (Section 3.8: the implementation passes a buffer of raw
     * sensor data to the application).
     */
    std::vector<double> rawData;
};

/**
 * Hub -> phone: a batch of buffered samples from one channel.
 *
 * Samples travel as 16-bit fixed-point values (a real low-power hub
 * would never ship doubles over a UART); `scale` converts them back:
 * value = raw * scale. decode reconstructs doubles with the
 * quantization the wire format implies.
 */
struct SensorBatchMessage
{
    /** Index of the channel on the hub. */
    std::int32_t channelIndex = 0;
    /** Timestamp of the first sample, seconds. */
    double firstTimestamp = 0.0;
    /** Sampling rate, Hz. */
    double sampleRateHz = 0.0;
    /** Fixed-point scale: value = raw * scale. */
    double scale = 1.0 / 1024.0;
    /** Decoded sample values. */
    std::vector<double> samples;
};

/**
 * Hub -> phone: periodic liveness beacon (transport/reliable.h,
 * hub/runtime.h). `bootId` increments on every hub reset, so the phone
 * detects a brownout-induced state loss even when it never misses a
 * beacon.
 */
struct HeartbeatMessage
{
    /** Hub boot epoch; changes whenever the hub loses its state. */
    std::uint32_t bootId = 0;
    /** Seconds since the current boot. */
    double uptimeSeconds = 0.0;
};

/**
 * Phone -> hub: open a live-reconfiguration transaction.
 *
 * Epochs are monotonically increasing per hub boot; the hub refuses
 * epochs at or below its committed one, so a delayed retransmit from a
 * superseded update can never resurrect old configuration.
 */
struct UpdateBeginMessage
{
    /** Config epoch this transaction will commit as. */
    std::uint32_t epoch = 0;
};

/**
 * One node of a delta-encoded plan (DeltaPushMessage).
 *
 * Nodes whose canonical shareKey is already live on the hub travel as
 * an 8-byte FNV-1a hash reference (`reused`); the hub splices the
 * referenced subgraph — state and all — into the staged plan. Only
 * nodes the hub has never seen ship in full.
 */
struct DeltaNodeEntry
{
    /** True: reference to a live hub node by shareKey hash. */
    bool reused = false;
    /** FNV-1a 64-bit hash of the canonical shareKey (when reused). */
    std::uint64_t keyHash = 0;
    /** Algorithm name (when shipped in full). */
    std::string algorithm;
    /** Literal parameters (when shipped in full). */
    std::vector<double> params;
    /**
     * Inputs (when shipped in full): value >= 0 is an index into this
     * message's entries; value < 0 is channel -(value + 1) in the
     * message's channel-name table.
     */
    std::vector<std::int32_t> inputs;

    bool
    operator==(const DeltaNodeEntry &other) const
    {
        return reused == other.reused && keyHash == other.keyHash &&
               algorithm == other.algorithm && params == other.params &&
               inputs == other.inputs;
    }
};

/** Phone -> hub: one condition's plan, delta-encoded. */
struct DeltaPushMessage
{
    /** Epoch of the open transaction this delta belongs to. */
    std::uint32_t epoch = 0;
    /** Phone-assigned identifier of the condition. */
    std::int32_t conditionId = 0;
    /** Channel names referenced by shipped entries. */
    std::vector<std::string> channelNames;
    /** Topologically ordered nodes (inputs precede consumers). */
    std::vector<DeltaNodeEntry> entries;
    /** Index of the entry feeding OUT. */
    std::uint32_t outEntry = 0;
};

/** Phone -> hub: commit every plan staged under this epoch. */
struct UpdateCommitMessage
{
    std::uint32_t epoch = 0;
};

/** Phone -> hub: abandon the transaction open at this epoch. */
struct UpdateAbortMessage
{
    std::uint32_t epoch = 0;
};

/** Outcome of an update transaction, from the hub's point of view. */
enum class UpdateStatus : std::uint8_t {
    /** The staged plans are live; the hub's epoch is now `epoch`. */
    Committed = 0,
    /** Staging failed or stalled; the A plans kept running and the
        epoch was not bumped. `reason` says why; the phone may retry
        with a fresh epoch. */
    RolledBack = 1,
    /** The epoch was at or below the hub's committed one (a delayed
        duplicate); nothing changed. */
    Stale = 2,
};

/** Hub -> phone: outcome of an update transaction. */
struct UpdateAckMessage
{
    std::uint32_t epoch = 0;
    UpdateStatus status = UpdateStatus::Committed;
    /** Human-readable rollback reason (empty when committed). */
    std::string reason;
};

/** @{ Frame encoding of each message. */
Frame encodeConfigPush(const ConfigPushMessage &message);
Frame encodeConfigAck(const ConfigAckMessage &message);
Frame encodeConfigReject(const ConfigRejectMessage &message);
Frame encodeConfigRemove(const ConfigRemoveMessage &message);
Frame encodeWakeUp(const WakeUpMessage &message);
Frame encodeSensorBatch(const SensorBatchMessage &message);
Frame encodeHeartbeat(const HeartbeatMessage &message);
Frame encodeUpdateBegin(const UpdateBeginMessage &message);
Frame encodeDeltaPush(const DeltaPushMessage &message);
Frame encodeUpdateCommit(const UpdateCommitMessage &message);
Frame encodeUpdateAbort(const UpdateAbortMessage &message);
Frame encodeUpdateAck(const UpdateAckMessage &message);
/** @} */

/**
 * @{ Frame decoding; each throws TransportError when the frame type or
 * payload shape does not match.
 */
ConfigPushMessage decodeConfigPush(const Frame &frame);
ConfigAckMessage decodeConfigAck(const Frame &frame);
ConfigRejectMessage decodeConfigReject(const Frame &frame);
ConfigRemoveMessage decodeConfigRemove(const Frame &frame);
WakeUpMessage decodeWakeUp(const Frame &frame);
SensorBatchMessage decodeSensorBatch(const Frame &frame);
HeartbeatMessage decodeHeartbeat(const Frame &frame);
UpdateBeginMessage decodeUpdateBegin(const Frame &frame);
DeltaPushMessage decodeDeltaPush(const Frame &frame);
UpdateCommitMessage decodeUpdateCommit(const Frame &frame);
UpdateAbortMessage decodeUpdateAbort(const Frame &frame);
UpdateAckMessage decodeUpdateAck(const Frame &frame);
/** @} */

/**
 * Wire bytes of @p message when framed as a plain (non-reliable)
 * ConfigPush: framing overhead + id + length-prefixed IL text. The
 * swlint SW202 note uses this to estimate hub-recovery re-push cost.
 */
std::size_t configPushWireBytes(const ConfigPushMessage &message);

/**
 * Wire bytes of @p message when framed as a plain (non-reliable)
 * DeltaPush. The SW202 reconfiguration note and `swlint --diff-plan`
 * use this to compare a delta update against a full re-push.
 */
std::size_t deltaPushWireBytes(const DeltaPushMessage &message);

/**
 * Wire bytes needed to ship @p sample_count samples in SensorBatch
 * frames of at most @p samples_per_frame samples (header + payload +
 * framing per frame).
 */
std::size_t sensorBatchWireBytes(std::size_t sample_count,
                                 std::size_t samples_per_frame = 1024);

/**
 * True when a link with @p usable_bits_per_second sustains continuous
 * streaming of one channel at @p sample_rate_hz in SensorBatch frames
 * — the Section 3.4 feasibility question ("the serial connection
 * provides sufficient bandwidth to support low bit-rate sensors ...
 * higher bit-rate sensors like the camera would require a higher
 * bandwidth data bus").
 */
bool canStreamContinuously(double usable_bits_per_second,
                           double sample_rate_hz);

} // namespace sidewinder::transport

#endif // SIDEWINDER_TRANSPORT_MESSAGES_H
