/**
 * @file
 * Typed messages carried over the framed serial link, with their
 * payload (de)serialization.
 */

#ifndef SIDEWINDER_TRANSPORT_MESSAGES_H
#define SIDEWINDER_TRANSPORT_MESSAGES_H

#include <cstdint>
#include <string>
#include <vector>

#include "transport/frame.h"

namespace sidewinder::transport {

/** Phone -> hub: install a wake-up condition. */
struct ConfigPushMessage
{
    /** Phone-assigned identifier of the condition. */
    std::int32_t conditionId = 0;
    /** Intermediate-language text of the condition. */
    std::string ilText;
};

/** Hub -> phone: result of a ConfigPush. */
struct ConfigAckMessage
{
    std::int32_t conditionId = 0;
};

/** Hub -> phone: a ConfigPush was rejected. */
struct ConfigRejectMessage
{
    std::int32_t conditionId = 0;
    /** Human-readable reason (validation or capability failure). */
    std::string reason;
};

/** Phone -> hub: remove an installed condition. */
struct ConfigRemoveMessage
{
    std::int32_t conditionId = 0;
};

/** Hub -> phone: a wake-up condition fired. */
struct WakeUpMessage
{
    std::int32_t conditionId = 0;
    /** Hub timestamp of the triggering value, seconds. */
    double timestamp = 0.0;
    /** Value that reached OUT. */
    double triggerValue = 0.0;
    /**
     * Recent raw samples of the condition's primary channel, oldest
     * first (Section 3.8: the implementation passes a buffer of raw
     * sensor data to the application).
     */
    std::vector<double> rawData;
};

/**
 * Hub -> phone: a batch of buffered samples from one channel.
 *
 * Samples travel as 16-bit fixed-point values (a real low-power hub
 * would never ship doubles over a UART); `scale` converts them back:
 * value = raw * scale. decode reconstructs doubles with the
 * quantization the wire format implies.
 */
struct SensorBatchMessage
{
    /** Index of the channel on the hub. */
    std::int32_t channelIndex = 0;
    /** Timestamp of the first sample, seconds. */
    double firstTimestamp = 0.0;
    /** Sampling rate, Hz. */
    double sampleRateHz = 0.0;
    /** Fixed-point scale: value = raw * scale. */
    double scale = 1.0 / 1024.0;
    /** Decoded sample values. */
    std::vector<double> samples;
};

/**
 * Hub -> phone: periodic liveness beacon (transport/reliable.h,
 * hub/runtime.h). `bootId` increments on every hub reset, so the phone
 * detects a brownout-induced state loss even when it never misses a
 * beacon.
 */
struct HeartbeatMessage
{
    /** Hub boot epoch; changes whenever the hub loses its state. */
    std::uint32_t bootId = 0;
    /** Seconds since the current boot. */
    double uptimeSeconds = 0.0;
};

/** @{ Frame encoding of each message. */
Frame encodeConfigPush(const ConfigPushMessage &message);
Frame encodeConfigAck(const ConfigAckMessage &message);
Frame encodeConfigReject(const ConfigRejectMessage &message);
Frame encodeConfigRemove(const ConfigRemoveMessage &message);
Frame encodeWakeUp(const WakeUpMessage &message);
Frame encodeSensorBatch(const SensorBatchMessage &message);
Frame encodeHeartbeat(const HeartbeatMessage &message);
/** @} */

/**
 * @{ Frame decoding; each throws TransportError when the frame type or
 * payload shape does not match.
 */
ConfigPushMessage decodeConfigPush(const Frame &frame);
ConfigAckMessage decodeConfigAck(const Frame &frame);
ConfigRejectMessage decodeConfigReject(const Frame &frame);
ConfigRemoveMessage decodeConfigRemove(const Frame &frame);
WakeUpMessage decodeWakeUp(const Frame &frame);
SensorBatchMessage decodeSensorBatch(const Frame &frame);
HeartbeatMessage decodeHeartbeat(const Frame &frame);
/** @} */

/**
 * Wire bytes of @p message when framed as a plain (non-reliable)
 * ConfigPush: framing overhead + id + length-prefixed IL text. The
 * swlint SW202 note uses this to estimate hub-recovery re-push cost.
 */
std::size_t configPushWireBytes(const ConfigPushMessage &message);

/**
 * Wire bytes needed to ship @p sample_count samples in SensorBatch
 * frames of at most @p samples_per_frame samples (header + payload +
 * framing per frame).
 */
std::size_t sensorBatchWireBytes(std::size_t sample_count,
                                 std::size_t samples_per_frame = 1024);

/**
 * True when a link with @p usable_bits_per_second sustains continuous
 * streaming of one channel at @p sample_rate_hz in SensorBatch frames
 * — the Section 3.4 feasibility question ("the serial connection
 * provides sufficient bandwidth to support low bit-rate sensors ...
 * higher bit-rate sensors like the camera would require a higher
 * bandwidth data bus").
 */
bool canStreamContinuously(double usable_bits_per_second,
                           double sample_rate_hz);

} // namespace sidewinder::transport

#endif // SIDEWINDER_TRANSPORT_MESSAGES_H
