#include "transport/reliable.h"

#include <algorithm>
#include <utility>

#include "support/error.h"

namespace sidewinder::transport {

Frame
encodeReliableData(std::uint16_t seq, const Frame &inner,
                   std::uint32_t config_epoch)
{
    Frame frame;
    frame.type = MessageType::Reliable;
    frame.payload.reserve(7 + inner.payload.size());
    frame.payload.push_back(static_cast<std::uint8_t>(seq & 0xFF));
    frame.payload.push_back(static_cast<std::uint8_t>((seq >> 8) & 0xFF));
    for (int i = 0; i < 4; ++i)
        frame.payload.push_back(static_cast<std::uint8_t>(
            (config_epoch >> (8 * i)) & 0xFF));
    frame.payload.push_back(static_cast<std::uint8_t>(inner.type));
    frame.payload.insert(frame.payload.end(), inner.payload.begin(),
                         inner.payload.end());
    return frame;
}

ReliableData
decodeReliableData(const Frame &frame)
{
    if (frame.type != MessageType::Reliable)
        throw TransportError("frame is not a Reliable message");
    if (frame.payload.size() < 7)
        throw TransportError("Reliable payload truncated");
    ReliableData data;
    data.seq = static_cast<std::uint16_t>(
        frame.payload[0] |
        (static_cast<std::uint16_t>(frame.payload[1]) << 8));
    for (int i = 0; i < 4; ++i)
        data.configEpoch |=
            static_cast<std::uint32_t>(frame.payload[2 + i]) << (8 * i);
    data.inner.type = static_cast<MessageType>(frame.payload[6]);
    data.inner.payload.assign(frame.payload.begin() + 7,
                              frame.payload.end());
    return data;
}

Frame
encodeLinkAck(std::uint16_t seq)
{
    Frame frame;
    frame.type = MessageType::LinkAck;
    frame.payload = {static_cast<std::uint8_t>(seq & 0xFF),
                     static_cast<std::uint8_t>((seq >> 8) & 0xFF)};
    return frame;
}

std::uint16_t
decodeLinkAck(const Frame &frame)
{
    if (frame.type != MessageType::LinkAck)
        throw TransportError("frame is not a LinkAck message");
    if (frame.payload.size() != 2)
        throw TransportError("LinkAck payload must be 2 bytes");
    return static_cast<std::uint16_t>(
        frame.payload[0] |
        (static_cast<std::uint16_t>(frame.payload[1]) << 8));
}

std::size_t
reliableWireBytes(const Frame &inner)
{
    // SOF + type + len(2) + crc(2) outer framing, plus the seq(2) +
    // epoch(4) + inner-type(1) wrapper ahead of the inner payload.
    return 6 + 7 + inner.payload.size();
}

ReliableEndpoint::ReliableEndpoint(UartLink &tx, ReliableConfig config)
    : tx(tx), config(config), jitter(config.jitterSeed)
{
    if (!(config.ackTimeoutSeconds > 0.0))
        throw TransportError("ack timeout must be positive");
    if (config.maxAttempts == 0)
        throw TransportError("maxAttempts must be positive");
}

void
ReliableEndpoint::sendFrame(const Frame &inner, double now)
{
    if (queue.size() >= config.maxQueueDepth) {
        ++statistics.queueOverflows;
        return;
    }
    queue.push_back(Pending{inner, nextSeq++, localEpoch});
    if (!inFlight)
        transmitHead(now, /*is_retransmit=*/false);
}

void
ReliableEndpoint::transmitHead(double now, bool is_retransmit)
{
    const Pending &head = queue.front();
    tx.sendFrame(encodeReliableData(head.seq, head.inner, head.epoch),
                 now);
    inFlight = true;
    ++attempts;
    if (is_retransmit)
        ++statistics.retransmits;
    else
        ++statistics.framesSent;

    // Exponential backoff on the timeout, capped and jittered. The
    // deadline starts when the line drains (busyUntil), not at `now`:
    // a 1.6 KB wake-up frame takes ~140 ms at 115200 baud, far longer
    // than the base timeout, and queued traffic ahead of us delays our
    // bytes further still.
    double timeout = config.ackTimeoutSeconds;
    for (std::size_t i = 1; i < attempts; ++i)
        timeout = std::min(timeout * config.backoffFactor,
                           config.maxBackoffSeconds);
    timeout *= 1.0 + config.jitterFraction * jitter.uniform(0.0, 1.0);
    deadline = tx.busyUntil() + timeout;
}

std::optional<Frame>
ReliableEndpoint::onFrame(const Frame &frame, double now,
                          DeliveryVerdict *verdict)
{
    DeliveryVerdict scratch;
    DeliveryVerdict &out = verdict ? *verdict : scratch;

    if (frame.type == MessageType::LinkAck) {
        out = DeliveryVerdict::ControlAck;
        const std::uint16_t seq = decodeLinkAck(frame);
        if (inFlight && seq == queue.front().seq) {
            ++statistics.acksReceived;
            queue.pop_front();
            inFlight = false;
            attempts = 0;
            if (!queue.empty())
                transmitHead(now, /*is_retransmit=*/false);
        } else {
            ++statistics.staleAcks;
        }
        return std::nullopt;
    }

    if (frame.type == MessageType::Reliable) {
        ReliableData data = decodeReliableData(frame);
        // Always ack — the sender may have missed our previous ack,
        // and a stale-epoch sender must stop retransmitting too.
        tx.sendFrame(encodeLinkAck(data.seq), now);
        ++statistics.acksSent;
        if (data.configEpoch != 0 && data.configEpoch < minimumEpoch) {
            // A delayed retransmit from before an A/B swap. The
            // sequence-number dedup below cannot be trusted to catch
            // it (reset() clears that state on recovery), so the
            // epoch stamp is the backstop against resurrecting
            // superseded configuration.
            out = DeliveryVerdict::StaleEpoch;
            ++statistics.staleEpochFrames;
            return std::nullopt;
        }
        if (haveRemoteSeq && data.seq == lastRemoteSeq) {
            out = DeliveryVerdict::Duplicate;
            ++statistics.duplicatesDropped;
            return std::nullopt;
        }
        haveRemoteSeq = true;
        lastRemoteSeq = data.seq;
        out = DeliveryVerdict::Delivered;
        return std::move(data.inner);
    }

    out = DeliveryVerdict::PassThrough;
    return frame;
}

void
ReliableEndpoint::tick(double now)
{
    if (!inFlight || now < deadline)
        return;
    if (attempts >= config.maxAttempts) {
        // Give up on this frame: drop it, surface the verdict, and
        // keep best-effort servicing the rest of the queue rather
        // than wedging the channel.
        ++statistics.framesLost;
        down = true;
        queue.pop_front();
        inFlight = false;
        attempts = 0;
        if (!queue.empty())
            transmitHead(now, /*is_retransmit=*/false);
        return;
    }
    transmitHead(now, /*is_retransmit=*/true);
}

void
ReliableEndpoint::reset()
{
    statistics.flushedOnReset += queue.size();
    queue.clear();
    inFlight = false;
    attempts = 0;
    deadline = 0.0;
    down = false;
    // A rebooted peer restarts its sequence numbers at 0; stale dedup
    // state would silently swallow its first frame.
    haveRemoteSeq = false;
}

} // namespace sidewinder::transport
