/**
 * @file
 * Reliable transport over the framed UART link.
 *
 * The paper hangs the whole architecture on a thin serial connection
 * (Section 3.4) but never discusses what happens when that link flips
 * a byte or loses a frame — real hub deployments treat both as the
 * common case. This layer adds a sequence-numbered, ack/retransmit
 * channel on top of the existing Frame/UartLink machinery:
 *
 *  - every application frame travels inside a MessageType::Reliable
 *    wrapper carrying a 16-bit sequence number (the outer frame's
 *    CRC16 covers the wrapped bytes, so no second checksum is needed);
 *  - the receiver acknowledges each sequence with a LinkAck frame and
 *    suppresses duplicates, giving at-least-once delivery with
 *    exactly-once *application* delivery under stop-and-wait;
 *  - the sender retransmits on ack timeout with bounded exponential
 *    backoff plus seeded jitter (support/rng.h — deterministic runs),
 *    and after a configurable number of attempts drops the frame and
 *    latches a link-down verdict for the supervisor to act on.
 *
 * Stop-and-wait (one frame in flight, a small bounded queue behind
 * it) is deliberate: it matches the memory budget of the MSP430-class
 * hubs the paper targets and naturally bounds link backlog, so
 * heartbeats interleaved on the same wire stay timely.
 *
 * Endpoints are symmetric: each side owns one for its transmit
 * direction. Frames that are not Reliable/LinkAck pass through
 * onFrame() untouched, so a reliable sender interoperates with a
 * legacy receiver loop and vice versa.
 */

#ifndef SIDEWINDER_TRANSPORT_RELIABLE_H
#define SIDEWINDER_TRANSPORT_RELIABLE_H

#include <cstdint>
#include <deque>
#include <optional>

#include "support/rng.h"
#include "transport/frame.h"
#include "transport/link.h"

namespace sidewinder::transport {

/** Tuning knobs of one reliable endpoint. */
struct ReliableConfig
{
    /**
     * Grace period after the frame finishes serializing before the
     * first retransmission; must cover the ack's return trip.
     */
    double ackTimeoutSeconds = 0.05;
    /** Timeout multiplier per retransmission (exponential backoff). */
    double backoffFactor = 2.0;
    /** Ceiling of the backed-off timeout, seconds. */
    double maxBackoffSeconds = 0.8;
    /** Extra uniform-random fraction added to every timeout. */
    double jitterFraction = 0.1;
    /** Transmissions per frame before giving up (first + retries). */
    std::size_t maxAttempts = 8;
    /** Frames queued behind the in-flight one before tail drop. */
    std::size_t maxQueueDepth = 64;
    /** Seed of the deterministic jitter stream. */
    std::uint64_t jitterSeed = 0x51DE314D;
};

/** Counters one endpoint accumulates (never reset except reset()). */
struct ReliableStats
{
    /** First transmissions of distinct frames. */
    std::size_t framesSent = 0;
    /** Retransmissions after an ack timeout. */
    std::size_t retransmits = 0;
    /** Frames abandoned after maxAttempts transmissions. */
    std::size_t framesLost = 0;
    /** Frames tail-dropped because the queue was full. */
    std::size_t queueOverflows = 0;
    /** Frames flushed undelivered by reset() (link/hub recovery). */
    std::size_t flushedOnReset = 0;
    /** Received duplicates suppressed (their ack was re-sent). */
    std::size_t duplicatesDropped = 0;
    std::size_t acksSent = 0;
    std::size_t acksReceived = 0;
    /** Acks that matched no in-flight sequence (stale/duplicate). */
    std::size_t staleAcks = 0;
    /**
     * Delivered-but-refused frames from a previous config epoch — a
     * delayed retransmit that arrived after an A/B swap (or a hub
     * reboot cleared the duplicate-detection state). Acked so the
     * sender stops retrying, but never passed to the application.
     */
    std::size_t staleEpochFrames = 0;
};

/** What ReliableEndpoint::onFrame() decided about one frame. */
enum class DeliveryVerdict {
    /** Fresh reliable data; the unwrapped inner frame was returned. */
    Delivered,
    /** A LinkAck — pure transport control, nothing to deliver. */
    ControlAck,
    /** Retransmit of the last delivered sequence; suppressed. */
    Duplicate,
    /** Data stamped with a config epoch older than the receiver's
        committed one; acked and refused (stats().staleEpochFrames). */
    StaleEpoch,
    /** Not a Reliable/LinkAck frame; passed through untouched. */
    PassThrough,
};

/**
 * Wrap @p inner (type + payload) under sequence number @p seq,
 * stamped with @p config_epoch (0 = unversioned, never filtered).
 */
Frame encodeReliableData(std::uint16_t seq, const Frame &inner,
                         std::uint32_t config_epoch = 0);

/** Unwrapped contents of one MessageType::Reliable frame. */
struct ReliableData
{
    std::uint16_t seq = 0;
    /** Sender's config epoch at transmission time (0 = unversioned). */
    std::uint32_t configEpoch = 0;
    Frame inner;
};

/**
 * Unwrap a MessageType::Reliable frame.
 * @throws TransportError when the payload is malformed.
 */
ReliableData decodeReliableData(const Frame &frame);

/** Acknowledgement of sequence @p seq. */
Frame encodeLinkAck(std::uint16_t seq);

/** @throws TransportError when the payload is malformed. */
std::uint16_t decodeLinkAck(const Frame &frame);

/**
 * Wire bytes of @p inner when shipped reliably (outer framing + the
 * sequence/type wrapper). Used by swlint's SW202 re-push cost note.
 */
std::size_t reliableWireBytes(const Frame &inner);

/**
 * One side's reliable sender/receiver.
 *
 * The owner decodes frames from its receive direction as before and
 * routes every decoded frame through onFrame(); it sends guaranteed
 * frames through sendFrame() instead of writing the link directly,
 * and calls tick() once per simulation step to drive retransmission
 * timers.
 */
class ReliableEndpoint
{
  public:
    /** @param tx The transmit direction this endpoint owns. */
    explicit ReliableEndpoint(UartLink &tx, ReliableConfig config = {});

    /**
     * Queue @p inner for guaranteed delivery. Tail-drops (and counts)
     * when the queue is full or the link is latched down.
     */
    void sendFrame(const Frame &inner, double now);

    /**
     * Process one frame decoded from the receive direction.
     *
     * @return the unwrapped inner frame when @p frame carried fresh
     *     reliable data; std::nullopt for acks, duplicates, and
     *     stale-epoch data; the frame itself, untouched, for every
     *     other type (pass-through for senders not using the reliable
     *     layer). @p verdict, when given, reports which of those it
     *     was — callers that must distinguish a stale-epoch refusal
     *     from a plain duplicate (metrics, tests) read it.
     * @throws TransportError on malformed Reliable/LinkAck payloads
     *     (possible only via a CRC collision or a buggy sender).
     */
    std::optional<Frame> onFrame(const Frame &frame, double now,
                                 DeliveryVerdict *verdict = nullptr);

    /** Drive retransmission/give-up timers up to time @p now. */
    void tick(double now);

    /**
     * True once a frame exhausted maxAttempts — the link-down verdict.
     * Latched until reset(); the endpoint keeps best-effort delivering
     * subsequent frames meanwhile.
     */
    bool linkDown() const { return down; }

    /** Frames queued (including the in-flight one). */
    std::size_t queuedFrames() const { return queue.size(); }

    const ReliableStats &stats() const { return statistics; }

    /**
     * Stamp subsequent outgoing data frames with @p epoch (the
     * sender's committed config epoch). Frames already queued keep the
     * epoch they were queued under — a retransmit must stay
     * byte-identical to its first transmission.
     */
    void setLocalEpoch(std::uint32_t epoch) { localEpoch = epoch; }

    std::uint32_t getLocalEpoch() const { return localEpoch; }

    /**
     * Refuse incoming data frames stamped with a nonzero config epoch
     * below @p epoch (see ReliableStats::staleEpochFrames). Receivers
     * raise this as they commit A/B swaps; it survives reset(), which
     * is exactly when the duplicate-detection state that would
     * otherwise catch a delayed retransmit is lost.
     */
    void setMinimumEpoch(std::uint32_t epoch) { minimumEpoch = epoch; }

    std::uint32_t getMinimumEpoch() const { return minimumEpoch; }

    /**
     * Forget all transmission state: flush the queue (counted in
     * stats().flushedOnReset), clear the link-down latch and the
     * remote duplicate-detection state. Called by supervisors after a
     * hub reboot or link recovery, right before re-pushing state.
     */
    void reset();

  private:
    void transmitHead(double now, bool is_retransmit);

    UartLink &tx;
    ReliableConfig config;
    Rng jitter;

    struct Pending
    {
        Frame inner;
        std::uint16_t seq = 0;
        /** Epoch stamped at queue time (retransmits stay identical). */
        std::uint32_t epoch = 0;
    };
    /** front() is the in-flight frame when inFlight is set. */
    std::deque<Pending> queue;
    bool inFlight = false;
    /** Transmissions of the head frame so far. */
    std::size_t attempts = 0;
    /** Ack deadline of the in-flight frame. */
    double deadline = 0.0;
    std::uint16_t nextSeq = 0;
    bool haveRemoteSeq = false;
    std::uint16_t lastRemoteSeq = 0;
    bool down = false;
    std::uint32_t localEpoch = 0;
    std::uint32_t minimumEpoch = 0;
    ReliableStats statistics;
};

} // namespace sidewinder::transport

#endif // SIDEWINDER_TRANSPORT_RELIABLE_H
