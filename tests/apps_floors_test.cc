/**
 * @file
 * Tests for the barometer floor-change extension: generator physics,
 * full recall of classifier and wake condition, rejection of weather
 * drift and door blips, and end-to-end simulation.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "hub/engine.h"
#include "hub/mcu.h"
#include "metrics/events.h"
#include "sim/simulator.h"
#include "support/error.h"
#include "trace/baro_gen.h"

namespace sidewinder::apps {
namespace {

trace::Trace
baroTrace(std::uint64_t seed = 42, double ride_fraction = 0.05)
{
    trace::BaroTraceConfig config;
    config.durationSeconds = 1200.0;
    config.rideFraction = ride_fraction;
    config.seed = seed;
    config.name = "baro-test";
    return trace::generateBaroTrace(config);
}

std::vector<double>
hubTriggers(const Application &app, const trace::Trace &trace)
{
    hub::Engine engine(app.channels());
    engine.addCondition(1, app.wakeCondition().compile());
    std::vector<double> triggers;
    for (std::size_t i = 0; i < trace.sampleCount(); ++i) {
        engine.pushSamples({trace.channels[0][i]}, trace.timeOf(i));
        for (const auto &event : engine.drainWakeEvents())
            triggers.push_back(event.timestamp);
    }
    return triggers;
}

TEST(BaroGen, ProducesRidesWithSaneMagnitudes)
{
    const auto trace = baroTrace();
    const auto rides =
        trace.eventsOfType(trace::event_type::floorChange);
    ASSERT_GE(rides.size(), 3u);

    // Pressure during a ride moves by at least ~0.3 hPa.
    const auto &p = trace.channels[0];
    for (const auto &ride : rides) {
        const auto a = static_cast<std::size_t>(ride.startTime *
                                                trace.sampleRateHz);
        const auto b = std::min(
            static_cast<std::size_t>(ride.endTime *
                                     trace.sampleRateHz),
            p.size() - 1);
        EXPECT_GE(std::abs(p[b] - p[a]), 0.3);
    }
}

TEST(BaroGen, RejectsBadConfig)
{
    trace::BaroTraceConfig config;
    config.rideFraction = 0.9;
    EXPECT_THROW(trace::generateBaroTrace(config), ConfigError);
    config = {};
    config.durationSeconds = -1.0;
    EXPECT_THROW(trace::generateBaroTrace(config), ConfigError);
}

TEST(FloorsApp, ClassifierFullRecallHighPrecision)
{
    const auto app = makeFloorsApp();
    const auto trace = baroTrace();
    const auto truth = trace.eventsOfType(app->eventType());
    ASSERT_FALSE(truth.empty());

    const auto detections =
        app->classify(trace, 0, trace.sampleCount());
    const auto result = metrics::matchEventsCoalesced(
        truth, detections, app->matchTolerance());
    EXPECT_DOUBLE_EQ(result.recall(), 1.0);
    EXPECT_GE(result.precision(), 0.9);
}

TEST(FloorsApp, WakeConditionCoversEveryRide)
{
    const auto app = makeFloorsApp();
    const auto trace = baroTrace(7);
    const auto truth = trace.eventsOfType(app->eventType());
    ASSERT_FALSE(truth.empty());
    const auto wake = metrics::matchEventsCoalesced(
        truth, hubTriggers(*app, trace), 4.0);
    EXPECT_DOUBLE_EQ(wake.recall(), 1.0);
}

TEST(FloorsApp, QuietDayNeverWakes)
{
    // No rides, only drift and blips: the classifier must stay
    // silent (the conservative wake condition may blip rarely).
    const auto app = makeFloorsApp();
    const auto trace = baroTrace(3, 0.0);
    EXPECT_TRUE(
        trace.eventsOfType(app->eventType()).empty());
    EXPECT_TRUE(app->classify(trace, 0, trace.sampleCount()).empty());
}

TEST(FloorsApp, FitsTheMsp430)
{
    const auto app = makeFloorsApp();
    EXPECT_EQ(hub::selectMcu(app->wakeCondition().compile(),
                             app->channels())
                  .name,
              "MSP430");
}

TEST(FloorsApp, SidewinderNearOracleEndToEnd)
{
    const auto app = makeFloorsApp();
    const auto trace = baroTrace(11);

    // Dwell and lookback come from the application's own
    // recommendations (slow barometer events need both deeper than
    // the defaults).
    sim::SimConfig config;
    config.strategy = sim::Strategy::Sidewinder;
    const auto sw = sim::simulate(trace, *app, config);
    config.strategy = sim::Strategy::Oracle;
    const auto oracle = sim::simulate(trace, *app, config);

    EXPECT_DOUBLE_EQ(sw.recall, 1.0);
    EXPECT_GE(metrics::savingsFraction(323.0, sw.averagePowerMw,
                                       oracle.averagePowerMw),
              0.85);
}

} // namespace
} // namespace sidewinder::apps
