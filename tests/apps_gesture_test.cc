/**
 * @file
 * Tests for the gesture extension: generator support, full recall of
 * classifier and wake condition, rejection of non-gesture motion,
 * and the Section 5.4 timeliness contrast against Batching.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "hub/engine.h"
#include "metrics/events.h"
#include "sim/simulator.h"
#include "trace/human_gen.h"

namespace sidewinder::apps {
namespace {

trace::Trace
gestureTrace(std::uint64_t seed = 42,
             trace::HumanScenario scenario = trace::HumanScenario::Office)
{
    trace::HumanTraceConfig config;
    config.scenario = scenario;
    config.durationSeconds = 400.0;
    config.gestureFraction = 0.03;
    config.seed = seed;
    config.name = "gesture-trace";
    return generateHumanTrace(config);
}

std::vector<double>
hubTriggers(const Application &app, const trace::Trace &trace)
{
    hub::Engine engine(app.channels());
    engine.addCondition(1, app.wakeCondition().compile());
    std::vector<double> triggers;
    for (std::size_t i = 0; i < trace.sampleCount(); ++i) {
        engine.pushSamples({trace.channels[0][i], trace.channels[1][i],
                            trace.channels[2][i]},
                           trace.timeOf(i));
        for (const auto &event : engine.drainWakeEvents())
            triggers.push_back(event.timestamp);
    }
    return triggers;
}

TEST(GestureGen, TracesContainGestures)
{
    const auto trace = gestureTrace();
    const auto gestures =
        trace.eventsOfType(trace::event_type::gesture);
    EXPECT_GE(gestures.size(), 3u);
    for (const auto &g : gestures)
        EXPECT_NEAR(g.duration(), 1.2, 0.2);
}

TEST(GestureGen, DisabledByDefault)
{
    trace::HumanTraceConfig config;
    config.durationSeconds = 200.0;
    config.seed = 1;
    const auto trace = generateHumanTrace(config);
    EXPECT_TRUE(
        trace.eventsOfType(trace::event_type::gesture).empty());
}

TEST(GestureApp, ClassifierFullRecallHighPrecision)
{
    const auto app = makeGestureApp();
    const auto trace = gestureTrace();
    const auto truth = trace.eventsOfType(app->eventType());
    ASSERT_FALSE(truth.empty());

    const auto detections =
        app->classify(trace, 0, trace.sampleCount());
    const auto result = metrics::matchEventsCoalesced(
        truth, detections, app->matchTolerance());
    EXPECT_DOUBLE_EQ(result.recall(), 1.0);
    EXPECT_GE(result.precision(), 0.9);
}

TEST(GestureApp, WakeConditionCoversEveryGesture)
{
    const auto app = makeGestureApp();
    const auto trace = gestureTrace(7);
    const auto truth = trace.eventsOfType(app->eventType());
    ASSERT_FALSE(truth.empty());
    const auto wake = metrics::matchEventsCoalesced(
        truth, hubTriggers(*app, trace), 0.5);
    EXPECT_DOUBLE_EQ(wake.recall(), 1.0);
}

TEST(GestureApp, StepsDoNotCrossTrigger)
{
    // A gesture-free walking-heavy trace must produce no gesture
    // detections (the 8 Hz burst criterion rejects gait bumps).
    const auto app = makeGestureApp();
    trace::HumanTraceConfig config;
    config.scenario = trace::HumanScenario::Retail;
    config.durationSeconds = 300.0;
    config.gestureFraction = 0.0;
    config.seed = 3;
    const auto trace = generateHumanTrace(config);
    EXPECT_TRUE(app->classify(trace, 0, trace.sampleCount()).empty());
}

TEST(GestureApp, GesturesDoNotBreakStepCounting)
{
    const auto steps = makeStepsApp();
    const auto trace = gestureTrace(11);
    const auto truth = trace.eventsOfType(steps->eventType());
    const auto detections =
        steps->classify(trace, 0, trace.sampleCount());
    const auto result = metrics::matchEvents(truth, detections,
                                             steps->matchTolerance());
    EXPECT_DOUBLE_EQ(result.recall(), 1.0);
}

TEST(GestureApp, SidewinderBeatsBatchingOnLatency)
{
    // Section 5.4: gestures need detection within a couple of
    // seconds; Batching at 10 s cannot provide that.
    const auto app = makeGestureApp();
    const auto trace = gestureTrace(13);
    ASSERT_FALSE(trace.eventsOfType(app->eventType()).empty());

    sim::SimConfig config;
    config.strategy = sim::Strategy::Sidewinder;
    const auto sw = sim::simulate(trace, *app, config);
    config.strategy = sim::Strategy::Batching;
    config.sleepIntervalSeconds = 10.0;
    const auto ba = sim::simulate(trace, *app, config);

    EXPECT_DOUBLE_EQ(sw.recall, 1.0);
    EXPECT_DOUBLE_EQ(ba.recall, 1.0);
    EXPECT_LE(sw.meanDetectionLatencySeconds, 2.0);
    EXPECT_GT(ba.meanDetectionLatencySeconds, 2.0);
}

} // namespace
} // namespace sidewinder::apps
