/**
 * @file
 * Parameterized recall sweeps: the calibrated-for-100%-recall
 * requirement of Section 5 must hold across environments, activity
 * levels, and random seeds, not just on one lucky trace. Each
 * parameter combination generates a fresh trace and checks every
 * ground-truth event is covered by both the main-CPU classifier and
 * the Sidewinder wake-up condition.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "hub/engine.h"
#include "metrics/events.h"
#include "trace/audio_gen.h"
#include "trace/robot_gen.h"

namespace sidewinder::apps {
namespace {

/** Hub trigger timestamps for @p app over @p trace. */
std::vector<double>
hubTriggers(const Application &app, const trace::Trace &trace)
{
    hub::Engine engine(app.channels());
    engine.addCondition(1, app.wakeCondition().compile());

    std::vector<std::size_t> mapping;
    for (const auto &ch : app.channels())
        mapping.push_back(trace.channelIndex(ch.name));

    std::vector<double> triggers;
    std::vector<double> values(mapping.size());
    for (std::size_t i = 0; i < trace.sampleCount(); ++i) {
        for (std::size_t c = 0; c < mapping.size(); ++c)
            values[c] = trace.channels[mapping[c]][i];
        engine.pushSamples(values, trace.timeOf(i));
        for (const auto &event : engine.drainWakeEvents())
            triggers.push_back(event.timestamp);
    }
    return triggers;
}

void
expectFullCoverage(const Application &app, const trace::Trace &trace,
                   double wake_pad)
{
    const auto truth = trace.eventsOfType(app.eventType());

    const auto detections =
        app.classify(trace, 0, trace.sampleCount());
    const auto classifier =
        app.coalesceDetections()
            ? metrics::matchEventsCoalesced(truth, detections,
                                            app.matchTolerance())
            : metrics::matchEvents(truth, detections,
                                   app.matchTolerance());
    EXPECT_DOUBLE_EQ(classifier.recall(), 1.0)
        << app.name() << " classifier on " << trace.name;

    const auto wake = metrics::matchEventsCoalesced(
        truth, hubTriggers(app, trace), wake_pad);
    EXPECT_DOUBLE_EQ(wake.recall(), 1.0)
        << app.name() << " wake condition on " << trace.name;
}

// --- Accelerometer sweep: activity group x seed ---------------------

struct AccelCase
{
    int group;
    std::uint64_t seed;
};

class AccelSweep : public ::testing::TestWithParam<AccelCase>
{
  protected:
    trace::Trace
    makeTrace() const
    {
        trace::RobotRunConfig config;
        config.idleFraction =
            trace::robotGroupIdleFraction(GetParam().group);
        config.durationSeconds = 150.0;
        config.seed = GetParam().seed;
        config.name = "sweep-g" + std::to_string(GetParam().group) +
                      "-s" + std::to_string(GetParam().seed);
        return generateRobotRun(config);
    }
};

TEST_P(AccelSweep, StepsFullRecall)
{
    expectFullCoverage(*makeStepsApp(), makeTrace(), 0.4);
}

TEST_P(AccelSweep, TransitionsFullRecall)
{
    expectFullCoverage(*makeTransitionsApp(), makeTrace(), 1.0);
}

TEST_P(AccelSweep, HeadbuttsFullRecall)
{
    expectFullCoverage(*makeHeadbuttsApp(), makeTrace(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    GroupsAndSeeds, AccelSweep,
    ::testing::Values(AccelCase{1, 101}, AccelCase{1, 202},
                      AccelCase{2, 101}, AccelCase{2, 202},
                      AccelCase{3, 101}, AccelCase{3, 202},
                      AccelCase{3, 303}),
    [](const ::testing::TestParamInfo<AccelCase> &info) {
        return "g" + std::to_string(info.param.group) + "s" +
               std::to_string(info.param.seed);
    });

// --- Audio sweep: environment x seed --------------------------------

struct AudioCase
{
    trace::AudioEnvironment environment;
    std::uint64_t seed;
};

class AudioSweep : public ::testing::TestWithParam<AudioCase>
{
  protected:
    trace::Trace
    makeTrace() const
    {
        trace::AudioTraceConfig config;
        config.environment = GetParam().environment;
        config.durationSeconds = 200.0;
        config.seed = GetParam().seed;
        config.phraseProbability = 0.6;
        config.name = "sweep-" +
                      trace::audioEnvironmentName(
                          GetParam().environment) +
                      "-s" + std::to_string(GetParam().seed);
        return trace::generateAudioTrace(config);
    }
};

TEST_P(AudioSweep, SirenFullRecall)
{
    expectFullCoverage(*makeSirenApp(), makeTrace(), 1.0);
}

TEST_P(AudioSweep, MusicFullRecall)
{
    expectFullCoverage(*makeMusicJournalApp(), makeTrace(), 2.0);
}

TEST_P(AudioSweep, PhraseClassifierFullRecall)
{
    // Wake coverage for phrase is against *speech* events (the
    // condition is a speech detector); tested separately below.
    const auto app = makePhraseApp();
    const auto trace = makeTrace();
    const auto truth = trace.eventsOfType(app->eventType());
    const auto detections =
        app->classify(trace, 0, trace.sampleCount());
    const auto result = metrics::matchEventsCoalesced(
        truth, detections, app->matchTolerance());
    EXPECT_DOUBLE_EQ(result.recall(), 1.0) << trace.name;
}

TEST_P(AudioSweep, SpeechWakeCoversAllSpeech)
{
    const auto app = makePhraseApp();
    const auto trace = makeTrace();
    const auto speech = trace.eventsOfType(trace::event_type::speech);
    const auto wake = metrics::matchEventsCoalesced(
        speech, hubTriggers(*app, trace), 1.5);
    EXPECT_DOUBLE_EQ(wake.recall(), 1.0) << trace.name;
}

INSTANTIATE_TEST_SUITE_P(
    EnvironmentsAndSeeds, AudioSweep,
    ::testing::Values(
        AudioCase{trace::AudioEnvironment::Office, 11},
        AudioCase{trace::AudioEnvironment::Office, 22},
        AudioCase{trace::AudioEnvironment::CoffeeShop, 11},
        AudioCase{trace::AudioEnvironment::CoffeeShop, 22},
        AudioCase{trace::AudioEnvironment::Outdoors, 11},
        AudioCase{trace::AudioEnvironment::Outdoors, 22}),
    [](const ::testing::TestParamInfo<AudioCase> &info) {
        return trace::audioEnvironmentName(info.param.environment) +
               "s" + std::to_string(info.param.seed);
    });

} // namespace
} // namespace sidewinder::apps
