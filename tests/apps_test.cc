/**
 * @file
 * Application-level integration tests: each app's main-CPU classifier
 * must reach 100% recall with high precision on generated traces, and
 * each Sidewinder wake-up condition must trigger for every ground-
 * truth event (the high-recall requirement of Section 2.1.2).
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "apps/predefined.h"
#include "hub/engine.h"
#include "metrics/events.h"
#include "trace/audio_gen.h"
#include "trace/robot_gen.h"
#include "trace/types.h"

namespace sidewinder::apps {
namespace {

trace::Trace
robotTrace(double idle_fraction = 0.5, std::uint64_t seed = 42)
{
    trace::RobotRunConfig config;
    config.idleFraction = idle_fraction;
    config.durationSeconds = 180.0;
    config.seed = seed;
    return generateRobotRun(config);
}

trace::Trace
audioTrace(std::uint64_t seed = 42,
           trace::AudioEnvironment env = trace::AudioEnvironment::Office)
{
    trace::AudioTraceConfig config;
    config.environment = env;
    config.durationSeconds = 240.0;
    config.seed = seed;
    config.phraseProbability = 0.5;
    return trace::generateAudioTrace(config);
}

/** Hub trigger timestamps of @p app's wake condition over @p trace. */
std::vector<double>
hubTriggers(const Application &app, const trace::Trace &trace)
{
    hub::Engine engine(app.channels());
    engine.addCondition(1, app.wakeCondition().compile());

    std::vector<std::size_t> mapping;
    for (const auto &ch : app.channels())
        mapping.push_back(trace.channelIndex(ch.name));

    std::vector<double> triggers;
    std::vector<double> values(mapping.size());
    for (std::size_t i = 0; i < trace.sampleCount(); ++i) {
        for (std::size_t c = 0; c < mapping.size(); ++c)
            values[c] = trace.channels[mapping[c]][i];
        engine.pushSamples(values, trace.timeOf(i));
        for (const auto &event : engine.drainWakeEvents())
            triggers.push_back(event.timestamp);
    }
    return triggers;
}

/** Every truth event must have a trigger within its padded span. */
double
wakeRecall(const Application &app, const trace::Trace &trace,
           double pad)
{
    const auto truth = trace.eventsOfType(app.eventType());
    const auto triggers = hubTriggers(app, trace);
    return metrics::matchEventsCoalesced(truth, triggers, pad)
        .recall();
}

metrics::MatchResult
classifierResult(const Application &app, const trace::Trace &trace)
{
    const auto detections =
        app.classify(trace, 0, trace.sampleCount());
    const auto truth = trace.eventsOfType(app.eventType());
    return app.coalesceDetections()
               ? metrics::matchEventsCoalesced(truth, detections,
                                               app.matchTolerance())
               : metrics::matchEvents(truth, detections,
                                      app.matchTolerance());
}

TEST(Factories, SixAppsWithExpectedNames)
{
    const auto apps = allApps();
    ASSERT_EQ(apps.size(), 6u);
    EXPECT_EQ(apps[0]->name(), "steps");
    EXPECT_EQ(apps[1]->name(), "transitions");
    EXPECT_EQ(apps[2]->name(), "headbutts");
    EXPECT_EQ(apps[3]->name(), "siren");
    EXPECT_EQ(apps[4]->name(), "music");
    EXPECT_EQ(apps[5]->name(), "phrase");
}

TEST(Factories, WakeConditionsCompileAndValidate)
{
    for (const auto &app : allApps()) {
        const auto program = app->wakeCondition().compile();
        EXPECT_NO_THROW(il::validate(program, app->channels()))
            << app->name();
    }
}

// --- Accelerometer applications -----------------------------------

TEST(Steps, ClassifierFindsEveryStep)
{
    const auto app = makeStepsApp();
    const auto trace = robotTrace();
    const auto result = classifierResult(*app, trace);
    EXPECT_DOUBLE_EQ(result.recall(), 1.0);
    EXPECT_GE(result.precision(), 0.9);
}

TEST(Steps, WakeConditionCoversEveryStep)
{
    const auto app = makeStepsApp();
    EXPECT_DOUBLE_EQ(wakeRecall(*app, robotTrace(), 0.4), 1.0);
}

TEST(Steps, QuietTraceTriggersNothing)
{
    const auto app = makeStepsApp();
    const auto trace = robotTrace(0.9, 7);
    const auto triggers = hubTriggers(*app, trace);
    // Triggers only during walk segments (plus trailing tolerance).
    const auto walks =
        trace.eventsOfType(trace::event_type::walkSegment);
    for (double t : triggers) {
        bool in_walk = false;
        for (const auto &w : walks)
            in_walk |= t >= w.startTime - 0.5 && t <= w.endTime + 0.5;
        EXPECT_TRUE(in_walk) << "spurious step trigger at " << t;
    }
}

TEST(Transitions, ClassifierFindsEveryTransition)
{
    const auto app = makeTransitionsApp();
    const auto result = classifierResult(*app, robotTrace());
    EXPECT_DOUBLE_EQ(result.recall(), 1.0);
    EXPECT_GE(result.precision(), 0.9);
}

TEST(Transitions, WakeConditionCoversEveryTransition)
{
    const auto app = makeTransitionsApp();
    EXPECT_DOUBLE_EQ(wakeRecall(*app, robotTrace(), 1.0), 1.0);
}

TEST(Headbutts, ClassifierFindsEveryHeadbutt)
{
    const auto app = makeHeadbuttsApp();
    // Low idle -> more headbutts to find.
    const auto result = classifierResult(*app, robotTrace(0.1, 13));
    EXPECT_DOUBLE_EQ(result.recall(), 1.0);
    EXPECT_GE(result.precision(), 0.9);
}

TEST(Headbutts, WakeConditionCoversEveryHeadbutt)
{
    const auto app = makeHeadbuttsApp();
    EXPECT_DOUBLE_EQ(wakeRecall(*app, robotTrace(0.1, 13), 0.5), 1.0);
}

TEST(Headbutts, WalkingDoesNotTrigger)
{
    const auto app = makeHeadbuttsApp();
    const auto trace = robotTrace(0.5, 99);
    const auto butts =
        trace.eventsOfType(trace::event_type::headbutt);
    const auto triggers = hubTriggers(*app, trace);
    const auto match =
        metrics::matchEventsCoalesced(butts, triggers, 0.5);
    // Any trigger outside a headbutt is a false positive.
    EXPECT_EQ(match.falsePositives, 0u);
}

// --- Audio applications --------------------------------------------

TEST(Siren, ClassifierFindsEverySiren)
{
    const auto app = makeSirenApp();
    const auto result = classifierResult(*app, audioTrace());
    EXPECT_DOUBLE_EQ(result.recall(), 1.0);
    EXPECT_GE(result.precision(), 0.9);
}

TEST(Siren, WakeConditionCoversEverySiren)
{
    const auto app = makeSirenApp();
    EXPECT_DOUBLE_EQ(wakeRecall(*app, audioTrace(), 1.0), 1.0);
}

TEST(Music, ClassifierFindsEverySong)
{
    const auto app = makeMusicJournalApp();
    const auto result = classifierResult(*app, audioTrace());
    EXPECT_DOUBLE_EQ(result.recall(), 1.0);
    EXPECT_GE(result.precision(), 0.8);
}

TEST(Music, WakeConditionCoversEverySong)
{
    const auto app = makeMusicJournalApp();
    EXPECT_DOUBLE_EQ(wakeRecall(*app, audioTrace(), 2.0), 1.0);
}

TEST(Phrase, ClassifierFindsEveryPhrase)
{
    const auto app = makePhraseApp();
    const auto result = classifierResult(*app, audioTrace());
    EXPECT_DOUBLE_EQ(result.recall(), 1.0);
    EXPECT_GE(result.precision(), 0.9);
}

TEST(Phrase, WakeConditionCoversEverySpeechSegment)
{
    // The wake condition is a *speech* detector; it must fire for
    // every speech segment (thus every phrase).
    const auto app = makePhraseApp();
    const auto trace = audioTrace();
    const auto speech =
        trace.eventsOfType(trace::event_type::speech);
    const auto triggers = hubTriggers(*app, trace);
    EXPECT_DOUBLE_EQ(
        metrics::matchEventsCoalesced(speech, triggers, 1.5).recall(),
        1.0);
}

TEST(Phrase, WakesFarMoreOftenThanPhrasesOccur)
{
    // Section 5.2: the condition wakes on speech (~5% of the trace)
    // though the phrase itself is rarer — the measured suboptimality
    // of generic conditions.
    const auto app = makePhraseApp();
    const auto trace = audioTrace();
    // Speech occupies several times more trace time than the phrase.
    EXPECT_GT(trace.eventSeconds(trace::event_type::speech),
              2.0 * trace.eventSeconds(trace::event_type::phrase));
}

// --- Predefined activity -------------------------------------------

TEST(Predefined, MotionConditionFiresOnAllRobotActivity)
{
    const auto trace = robotTrace(0.5, 17);
    const auto app = makeStepsApp(); // for channels only
    hub::Engine engine(app->channels());
    engine.addCondition(1, significantMotionCondition().compile());

    std::vector<double> triggers;
    for (std::size_t i = 0; i < trace.sampleCount(); ++i) {
        engine.pushSamples({trace.channels[0][i], trace.channels[1][i],
                            trace.channels[2][i]},
                           trace.timeOf(i));
        for (const auto &event : engine.drainWakeEvents())
            triggers.push_back(event.timestamp);
    }

    const auto active =
        trace.eventsOfType(trace::event_type::activeSegment);
    EXPECT_DOUBLE_EQ(
        metrics::matchEventsCoalesced(active, triggers, 1.5).recall(),
        1.0);
}

TEST(Predefined, ConditionsValidate)
{
    EXPECT_NO_THROW(il::validate(
        significantMotionCondition().compile(),
        {{"ACC_X", 50.0}, {"ACC_Y", 50.0}, {"ACC_Z", 50.0}}));
    EXPECT_NO_THROW(il::validate(significantSoundCondition().compile(),
                                 {{"AUDIO", 4000.0}}));
}

} // namespace
} // namespace sidewinder::apps
