/**
 * @file
 * Tests for the developer API: pipeline compilation (Figure 2a ->
 * Figure 2c), and the full phone-to-hub loop through the sensor
 * manager over the simulated UART.
 */

#include <gtest/gtest.h>

#include "core/algorithm.h"
#include "core/pipeline.h"
#include "core/sensor_manager.h"
#include "core/sensors.h"
#include "hub/mcu.h"
#include "hub/runtime.h"
#include "il/writer.h"
#include "support/error.h"

namespace sidewinder::core {
namespace {

/** The exact developer code of Figure 2a of the paper. */
ProcessingPipeline
significantMotionPipeline()
{
    ProcessingPipeline significant_motion;
    std::vector<ProcessingBranch> branches;
    branches.emplace_back(channel::accelerometerX);
    branches.emplace_back(channel::accelerometerY);
    branches.emplace_back(channel::accelerometerZ);
    branches[0].add(MovingAverage(10));
    branches[1].add(MovingAverage(10));
    branches[2].add(MovingAverage(10));
    significant_motion.add(branches);
    significant_motion.add(VectorMagnitude());
    significant_motion.add(MinThreshold(15));
    return significant_motion;
}

TEST(Pipeline, CompilesFigure2aToFigure2c)
{
    const std::string expected =
        "ACC_X -> movingAvg(id=1, params={10});\n"
        "ACC_Y -> movingAvg(id=2, params={10});\n"
        "ACC_Z -> movingAvg(id=3, params={10});\n"
        "1,2,3 -> vectorMagnitude(id=4);\n"
        "4 -> minThreshold(id=5, params={15});\n"
        "5 -> OUT;\n";
    EXPECT_EQ(il::write(significantMotionPipeline().compile()),
              expected);
}

TEST(Pipeline, EmptyPipelineThrows)
{
    EXPECT_THROW(ProcessingPipeline().compile(), ConfigError);
}

TEST(Pipeline, MultiBranchWithoutAggregationThrows)
{
    ProcessingPipeline pipeline;
    pipeline.add(ProcessingBranch(channel::accelerometerX)
                     .add(MovingAverage(10)));
    pipeline.add(ProcessingBranch(channel::accelerometerY)
                     .add(MovingAverage(10)));
    EXPECT_THROW(pipeline.compile(), ConfigError);
}

TEST(Pipeline, BareChannelToOutThrows)
{
    ProcessingPipeline pipeline;
    pipeline.add(ProcessingBranch(channel::accelerometerX));
    EXPECT_THROW(pipeline.compile(), ConfigError);
}

TEST(Pipeline, SingleBranchChainsSequentially)
{
    ProcessingPipeline pipeline;
    pipeline.add(ProcessingBranch(channel::accelerometerY)
                     .add(MovingAverage(3))
                     .add(LocalMinima(-6.75, -3.75)));
    const auto program = pipeline.compile();
    ASSERT_EQ(program.statements.size(), 3u);
    EXPECT_EQ(program.statements[1].algorithm, "localMinima");
    EXPECT_TRUE(program.statements[2].isOut);
}

TEST(Pipeline, StagesAfterAggregationChain)
{
    ProcessingPipeline pipeline;
    pipeline.add(ProcessingBranch(channel::audio)
                     .add(Window(256))
                     .add(Rms())
                     .add(MinThreshold(0.1)));
    pipeline.add(ProcessingBranch(channel::audio)
                     .add(Window(256))
                     .add(Max())
                     .add(MaxThreshold(1.0)));
    pipeline.add(And());
    pipeline.add(Consecutive(3));
    const auto program = pipeline.compile();
    // 3 + 3 branch nodes + and + consecutive + OUT.
    ASSERT_EQ(program.statements.size(), 9u);
    EXPECT_EQ(program.statements[6].algorithm, "and");
    EXPECT_EQ(program.statements[6].inputs.size(), 2u);
    EXPECT_EQ(program.statements[7].algorithm, "consecutive");
}

TEST(Algorithms, StubsCarryIlNamesAndParams)
{
    EXPECT_EQ(MovingAverage(10).name(), "movingAvg");
    EXPECT_EQ(MovingAverage(10).params(),
              (std::vector<double>{10.0}));
    EXPECT_EQ(Window(256, true).params(),
              (std::vector<double>{256.0, 1.0}));
    EXPECT_EQ(Window(256, false, 128).params(),
              (std::vector<double>{256.0, 0.0, 128.0}));
    EXPECT_EQ(BandThreshold(850, 1800).params(),
              (std::vector<double>{850.0, 1800.0}));
    EXPECT_TRUE(Fft().params().empty());
}

TEST(Sensors, DefaultChannels)
{
    const auto accel = accelerometerChannels();
    ASSERT_EQ(accel.size(), 3u);
    EXPECT_EQ(accel[0].name, "ACC_X");
    EXPECT_DOUBLE_EQ(accel[0].sampleRateHz, 50.0);
    const auto audio = audioChannels();
    ASSERT_EQ(audio.size(), 1u);
    EXPECT_DOUBLE_EQ(audio[0].sampleRateHz, 4000.0);
    EXPECT_EQ(allChannels().size(), 5u);
}

/** Records wake-up callbacks for assertions. */
class RecordingListener : public SensorEventListener
{
  public:
    void
    onSensorEvent(const SensorData &data) override
    {
        events.push_back(data);
    }

    std::vector<SensorData> events;
};

/** Full loop: manager -> UART -> hub -> UART -> callback. */
class EndToEnd : public ::testing::Test
{
  protected:
    EndToEnd()
        : link(1e6),
          hub(link, accelerometerChannels(), hub::msp430()),
          manager(link, accelerometerChannels())
    {}

    transport::LinkPair link;
    hub::HubRuntime hub;
    SidewinderSensorManager manager;
    RecordingListener listener;
};

TEST_F(EndToEnd, PushActivatesAfterAck)
{
    const int id =
        manager.push(significantMotionPipeline(), &listener, 0.0);
    EXPECT_EQ(manager.state(id), ConditionState::Pending);
    hub.pollLink(1.0);
    manager.poll(2.0);
    EXPECT_EQ(manager.state(id), ConditionState::Active);
    EXPECT_TRUE(hub.engine().hasCondition(id));
}

TEST_F(EndToEnd, WakeUpReachesListener)
{
    const int id =
        manager.push(significantMotionPipeline(), &listener, 0.0);
    hub.pollLink(1.0);
    manager.poll(2.0);

    for (int i = 0; i < 10; ++i)
        hub.pushSamples({20.0, 20.0, 20.0}, 2.0 + i * 0.02);
    manager.poll(10.0);

    ASSERT_FALSE(listener.events.empty());
    EXPECT_EQ(listener.events.front().conditionId, id);
    EXPECT_GE(listener.events.front().triggerValue, 15.0);
    EXPECT_FALSE(listener.events.front().rawData.empty());
}

TEST_F(EndToEnd, InvalidPipelineFailsLocallyBeforeTransmission)
{
    ProcessingPipeline bad;
    bad.add(ProcessingBranch("GYRO").add(MovingAverage(10)));
    EXPECT_THROW(manager.push(bad, &listener), SidewinderError);
}

TEST_F(EndToEnd, NullListenerRejected)
{
    EXPECT_THROW(manager.push(significantMotionPipeline(), nullptr),
                 ConfigError);
}

TEST_F(EndToEnd, RemoveSilencesCallbacks)
{
    const int id =
        manager.push(significantMotionPipeline(), &listener, 0.0);
    hub.pollLink(1.0);
    manager.poll(2.0);
    manager.remove(id, 2.0);
    hub.pollLink(3.0);

    for (int i = 0; i < 10; ++i)
        hub.pushSamples({20.0, 20.0, 20.0}, 3.0 + i * 0.02);
    manager.poll(10.0);
    EXPECT_TRUE(listener.events.empty());
    EXPECT_EQ(manager.state(id), ConditionState::Removed);
}

TEST_F(EndToEnd, HubRejectionSurfacesReason)
{
    // An audio-rate FFT pipeline is beyond the MSP430 hub, but local
    // validation passes (it is a well-formed program) — the rejection
    // must come back from the hub. Use an audio-capable manager+hub.
    transport::LinkPair audio_link(1e6);
    hub::HubRuntime audio_hub(audio_link, audioChannels(),
                              hub::msp430());
    SidewinderSensorManager audio_manager(audio_link, audioChannels());

    ProcessingPipeline fft_pipeline;
    fft_pipeline.add(ProcessingBranch(channel::audio)
                         .add(Window(256))
                         .add(Fft())
                         .add(Spectrum())
                         .add(PeakToMeanRatio())
                         .add(MinThreshold(4.0)));
    const int id = audio_manager.push(fft_pipeline, &listener, 0.0);
    audio_hub.pollLink(1.0);
    audio_manager.poll(2.0);
    EXPECT_EQ(audio_manager.state(id), ConditionState::Rejected);
    EXPECT_FALSE(audio_manager.rejectionReason(id).empty());
}

TEST_F(EndToEnd, IlTextIsInspectable)
{
    const int id =
        manager.push(significantMotionPipeline(), &listener, 0.0);
    EXPECT_NE(manager.ilTextOf(id).find("vectorMagnitude"),
              std::string::npos);
    EXPECT_THROW(manager.ilTextOf(id + 1), ConfigError);
}

} // namespace
} // namespace sidewinder::core
