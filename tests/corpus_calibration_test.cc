/**
 * @file
 * Corpus-wide calibration invariant: the property Section 5 of the
 * paper builds its entire comparison on — "we calibrated all
 * approaches so that they all achieve 100% recall" — must hold for
 * every accelerometer application on every run of the robot corpus,
 * end to end through the simulator (hub condition + awake windows +
 * second-stage classifier).
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "sim/simulator.h"
#include "trace/robot_gen.h"

namespace sidewinder::sim {
namespace {

class CorpusCalibration : public ::testing::Test
{
  protected:
    static const std::vector<trace::Trace> &
    corpus()
    {
        static const std::vector<trace::Trace> traces =
            trace::generateRobotCorpus(300.0, 20160402);
        return traces;
    }
};

TEST_F(CorpusCalibration, SidewinderFullRecallOnEveryRun)
{
    SimConfig config;
    config.strategy = Strategy::Sidewinder;
    for (const auto &app : apps::accelerometerApps()) {
        for (const auto &t : corpus()) {
            const auto r = simulate(t, *app, config);
            EXPECT_DOUBLE_EQ(r.recall, 1.0)
                << app->name() << " on " << t.name;
            EXPECT_GE(r.precision, 0.85)
                << app->name() << " on " << t.name;
        }
    }
}

TEST_F(CorpusCalibration, BatchingFullRecallOnEveryRun)
{
    SimConfig config;
    config.strategy = Strategy::Batching;
    config.sleepIntervalSeconds = 10.0;
    for (const auto &app : apps::accelerometerApps()) {
        for (const auto &t : corpus()) {
            EXPECT_DOUBLE_EQ(simulate(t, *app, config).recall, 1.0)
                << app->name() << " on " << t.name;
        }
    }
}

TEST_F(CorpusCalibration, SidewinderBelowAlwaysAwakeEverywhere)
{
    SimConfig config;
    config.strategy = Strategy::Sidewinder;
    for (const auto &app : apps::accelerometerApps()) {
        for (const auto &t : corpus()) {
            EXPECT_LT(simulate(t, *app, config).averagePowerMw, 323.0)
                << app->name() << " on " << t.name;
        }
    }
}

} // namespace
} // namespace sidewinder::sim
