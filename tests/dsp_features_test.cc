/**
 * @file
 * Unit tests for feature extraction: vector magnitude, ZCR,
 * statistics, dominant frequency.
 */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "dsp/features.h"
#include "dsp/fft.h"
#include "support/error.h"

namespace sidewinder::dsp {
namespace {

TEST(VectorMagnitude, PythagoreanTriple)
{
    EXPECT_DOUBLE_EQ(vectorMagnitude({3.0, 4.0}), 5.0);
    EXPECT_DOUBLE_EQ(vectorMagnitude({1.0, 2.0, 2.0}), 3.0);
}

TEST(VectorMagnitude, EmptyIsZero)
{
    EXPECT_DOUBLE_EQ(vectorMagnitude({}), 0.0);
}

TEST(ZeroCrossingRate, AlternatingSignIsMaximal)
{
    EXPECT_DOUBLE_EQ(zeroCrossingRate({1.0, -1.0, 1.0, -1.0, 1.0}),
                     1.0);
}

TEST(ZeroCrossingRate, ConstantSignIsZero)
{
    EXPECT_DOUBLE_EQ(zeroCrossingRate({1.0, 2.0, 3.0}), 0.0);
    EXPECT_DOUBLE_EQ(zeroCrossingRate({-1.0, -2.0}), 0.0);
}

TEST(ZeroCrossingRate, ShortFramesAreZero)
{
    EXPECT_DOUBLE_EQ(zeroCrossingRate({}), 0.0);
    EXPECT_DOUBLE_EQ(zeroCrossingRate({5.0}), 0.0);
}

TEST(ZeroCrossingRate, SineMatchesTwiceFrequency)
{
    // A tone at frequency f crosses zero 2f times per second.
    const double fs = 1000.0;
    const double f = 50.0;
    std::vector<double> frame(1000);
    for (std::size_t i = 0; i < frame.size(); ++i)
        frame[i] = std::sin(2.0 * std::numbers::pi * f *
                            static_cast<double>(i) / fs);
    EXPECT_NEAR(zeroCrossingRate(frame), 2.0 * f / fs, 0.01);
}

TEST(Statistics, MeanVarianceStddev)
{
    const std::vector<double> frame = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0,
                                       7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(frame), 5.0);
    EXPECT_DOUBLE_EQ(variance(frame), 4.0);
    EXPECT_DOUBLE_EQ(stddev(frame), 2.0);
}

TEST(Statistics, EmptyFrameDefaults)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(variance({}), 0.0);
    EXPECT_DOUBLE_EQ(rootMeanSquare({}), 0.0);
    EXPECT_THROW(minimum({}), ConfigError);
    EXPECT_THROW(maximum({}), ConfigError);
    EXPECT_THROW(range({}), ConfigError);
}

TEST(Statistics, MinMaxRange)
{
    const std::vector<double> frame = {3.0, -1.0, 7.0, 2.0};
    EXPECT_DOUBLE_EQ(minimum(frame), -1.0);
    EXPECT_DOUBLE_EQ(maximum(frame), 7.0);
    EXPECT_DOUBLE_EQ(range(frame), 8.0);
}

TEST(Statistics, RmsOfConstant)
{
    EXPECT_DOUBLE_EQ(rootMeanSquare({-3.0, -3.0, -3.0}), 3.0);
}

TEST(Statistics, RmsOfSine)
{
    std::vector<double> frame(1000);
    for (std::size_t i = 0; i < frame.size(); ++i)
        frame[i] = 2.0 * std::sin(2.0 * std::numbers::pi * 10.0 *
                                  static_cast<double>(i) / 1000.0);
    EXPECT_NEAR(rootMeanSquare(frame), 2.0 / std::sqrt(2.0), 1e-3);
}

TEST(DominantFrequency, NeedsAtLeastTwoBins)
{
    EXPECT_THROW(dominantFrequency({1.0}), ConfigError);
}

TEST(DominantFrequency, IgnoresDcBin)
{
    // Bin 0 (DC) is largest but must not be selected.
    const auto dom = dominantFrequency({100.0, 1.0, 5.0, 2.0});
    EXPECT_EQ(dom.bin, 2u);
    EXPECT_DOUBLE_EQ(dom.magnitude, 5.0);
    EXPECT_NEAR(dom.meanMagnitude, 8.0 / 3.0, 1e-12);
}

TEST(DominantFrequency, PeakToMeanRatioForPitchedTone)
{
    const double fs = 4000.0;
    const std::size_t n = 256;
    std::vector<double> frame(n);
    for (std::size_t i = 0; i < n; ++i)
        frame[i] = std::sin(2.0 * std::numbers::pi * 1000.0 *
                            static_cast<double>(i) / fs);
    const auto dom = dominantFrequency(magnitudeSpectrum(frame));
    // 1000 Hz at fs 4000, n 256 -> bin 64.
    EXPECT_EQ(dom.bin, 64u);
    EXPECT_GT(dom.peakToMeanRatio(), 20.0);
}

TEST(DominantFrequency, ZeroSpectrumHasZeroRatio)
{
    const auto dom = dominantFrequency({0.0, 0.0, 0.0});
    EXPECT_DOUBLE_EQ(dom.peakToMeanRatio(), 0.0);
}

} // namespace
} // namespace sidewinder::dsp
