/**
 * @file
 * Property tests for the planned FFT path: FftPlan and the real-input
 * transforms must match the naive reference transform to within 1e-9
 * across random power-of-two sizes and signals, round-trip exactly,
 * and reuse cached plans. The zero-allocation property itself is
 * verified by the bench-mode allocation counter in bench_dsp_micro.
 */

#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "dsp/fft_plan.h"
#include "dsp/filters.h"
#include "dsp/window.h"
#include "support/error.h"
#include "support/rng.h"

namespace sidewinder::dsp {
namespace {

class FftPlanProperty : public ::testing::TestWithParam<int>
{
  protected:
    Rng rng{static_cast<std::uint64_t>(GetParam())};

    std::size_t
    randomPowerOfTwo(int min_log2 = 0, int max_log2 = 12)
    {
        return static_cast<std::size_t>(1)
               << rng.uniformInt(min_log2, max_log2);
    }

    std::vector<double>
    randomSamples(std::size_t n, double lo = -10.0, double hi = 10.0)
    {
        std::vector<double> out(n);
        for (auto &v : out)
            v = rng.uniform(lo, hi);
        return out;
    }

    std::vector<Complex>
    randomComplex(std::size_t n)
    {
        std::vector<Complex> out(n);
        for (auto &v : out)
            v = Complex(rng.uniform(-10.0, 10.0),
                        rng.uniform(-10.0, 10.0));
        return out;
    }
};

TEST_P(FftPlanProperty, ForwardMatchesNaiveTransform)
{
    const std::size_t n = randomPowerOfTwo();
    const auto signal = randomComplex(n);

    auto planned = signal;
    FftPlan plan(n);
    plan.forward(planned);

    auto reference = signal;
    naiveFft(reference);

    ASSERT_EQ(planned.size(), reference.size());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(planned[i] - reference[i]), 0.0, 1e-9)
            << "bin " << i << " of " << n;
}

TEST_P(FftPlanProperty, InverseMatchesNaiveTransform)
{
    const std::size_t n = randomPowerOfTwo();
    const auto spectrum = randomComplex(n);

    auto planned = spectrum;
    FftPlan::forSize(n)->inverse(planned);

    auto reference = spectrum;
    naiveIfft(reference);

    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(planned[i] - reference[i]), 0.0, 1e-9);
}

TEST_P(FftPlanProperty, RealForwardMatchesNaiveTransform)
{
    const std::size_t n = randomPowerOfTwo();
    const auto samples = randomSamples(n, -1.0, 1.0);

    std::vector<Complex> planned;
    FftPlan::forSize(n)->forwardReal(samples, planned);

    std::vector<Complex> reference(samples.begin(), samples.end());
    naiveFft(reference);

    ASSERT_EQ(planned.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(planned[i] - reference[i]), 0.0, 1e-9)
            << "bin " << i << " of " << n;
}

TEST_P(FftPlanProperty, FftRealFreeFunctionMatchesNaive)
{
    const std::size_t n = randomPowerOfTwo(0, 10);
    const auto samples = randomSamples(n, -5.0, 5.0);

    const auto planned = fftReal(samples);
    std::vector<Complex> reference(samples.begin(), samples.end());
    naiveFft(reference);

    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(std::abs(planned[i] - reference[i]), 0.0, 1e-9);
}

TEST_P(FftPlanProperty, IfftInvertsFftAfterTwiddleTableChange)
{
    const std::size_t n = randomPowerOfTwo();
    const auto samples = randomSamples(n);

    const auto restored = ifftToReal(fftReal(samples));
    ASSERT_EQ(restored.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(restored[i], samples[i], 1e-9);
}

TEST_P(FftPlanProperty, RealRoundTripThroughHalfSizeTransforms)
{
    const std::size_t n = randomPowerOfTwo();
    const auto samples = randomSamples(n);
    const auto plan = FftPlan::forSize(n);

    std::vector<Complex> spectrum;
    plan->forwardReal(samples, spectrum);
    std::vector<double> restored;
    plan->inverseReal(spectrum, restored);

    ASSERT_EQ(restored.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(restored[i], samples[i], 1e-9);
}

TEST_P(FftPlanProperty, RealSpectrumIsConjugateSymmetric)
{
    const std::size_t n = randomPowerOfTwo(1, 12);
    const auto samples = randomSamples(n);

    std::vector<Complex> spectrum;
    FftPlan::forSize(n)->forwardReal(samples, spectrum);

    EXPECT_NEAR(spectrum[0].imag(), 0.0, 1e-9);
    EXPECT_NEAR(spectrum[n / 2].imag(), 0.0, 1e-9);
    for (std::size_t k = 1; k < n / 2; ++k)
        EXPECT_NEAR(
            std::abs(spectrum[k] - std::conj(spectrum[n - k])), 0.0,
            1e-9);
}

TEST_P(FftPlanProperty, BlockFilterIntoMatchesAllocatingApply)
{
    const std::size_t n = randomPowerOfTwo(2, 10);
    const auto frame = randomSamples(n);
    const double rate = 128.0;
    FftBlockFilter filter(PassBand::LowPass, rng.uniform(5.0, 50.0),
                          rate);

    const auto reference = filter.apply(frame);
    std::vector<double> reused;
    filter.applyInto(frame, reused);
    filter.applyInto(frame, reused); // second call reuses scratch

    ASSERT_EQ(reused.size(), reference.size());
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(reused[i], reference[i], 1e-9);
}

TEST_P(FftPlanProperty, WindowPushIntoMatchesPush)
{
    const std::size_t size =
        static_cast<std::size_t>(rng.uniformInt(2, 64));
    const std::size_t hop = static_cast<std::size_t>(
        rng.uniformInt(1, static_cast<int>(size)));
    const bool hamming = rng.uniformInt(0, 1) == 1;
    const auto type = hamming ? WindowType::Hamming
                              : WindowType::Rectangular;

    WindowPartitioner reference(size, type, hop);
    WindowPartitioner reused(size, type, hop);
    std::vector<double> frame;
    for (int i = 0; i < 500; ++i) {
        const double sample = rng.uniform(-3.0, 3.0);
        const auto expected = reference.push(sample);
        const bool emitted = reused.pushInto(sample, frame);
        ASSERT_EQ(emitted, expected.has_value());
        if (!emitted)
            continue;
        ASSERT_EQ(frame.size(), expected->size());
        for (std::size_t k = 0; k < frame.size(); ++k)
            EXPECT_DOUBLE_EQ(frame[k], (*expected)[k]);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FftPlanProperty,
                         ::testing::Range(1, 17));

TEST(FftPlan, CacheSharesInstances)
{
    const auto a = FftPlan::forSize(256);
    const auto b = FftPlan::forSize(256);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(a->size(), 256u);
}

TEST(FftPlan, RejectsNonPowerOfTwoSizes)
{
    EXPECT_THROW(FftPlan plan(12), ConfigError);
    EXPECT_THROW(FftPlan::forSize(0), ConfigError);
    EXPECT_THROW(FftPlan::forSize(100), ConfigError);
}

TEST(FftPlan, SizeCheckedOverloadsReject)
{
    const auto plan = FftPlan::forSize(8);
    std::vector<Complex> wrong(4);
    EXPECT_THROW(plan->forward(wrong), ConfigError);
    EXPECT_THROW(plan->inverse(wrong), ConfigError);
}

TEST(FftPlan, TrivialSizes)
{
    std::vector<Complex> one{Complex(3.5, -1.0)};
    FftPlan::forSize(1)->forward(one);
    EXPECT_NEAR(std::abs(one[0] - Complex(3.5, -1.0)), 0.0, 1e-12);

    std::vector<double> pair{2.0, 5.0};
    std::vector<Complex> spectrum;
    FftPlan::forSize(2)->forwardReal(pair, spectrum);
    EXPECT_NEAR(spectrum[0].real(), 7.0, 1e-12);
    EXPECT_NEAR(spectrum[1].real(), -3.0, 1e-12);
}

TEST(FftPlan, CountersTrackPlannedAndNaivePaths)
{
    resetFftCounters();
    const auto plan = FftPlan::forSize(64);
    std::vector<Complex> data(64, Complex(1.0, 0.0));
    plan->forward(data);
    auto naive = data;
    naiveFft(naive);

    const auto counters = fftCounters();
    EXPECT_GE(counters.plannedTransforms, 1u);
    EXPECT_GE(counters.naiveTransforms, 1u);
}

} // namespace
} // namespace sidewinder::dsp
