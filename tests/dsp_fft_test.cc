/**
 * @file
 * Unit and property tests for the FFT module.
 */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "support/error.h"
#include "support/rng.h"

namespace sidewinder::dsp {
namespace {

TEST(Fft, PowerOfTwoPredicate)
{
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_TRUE(isPowerOfTwo(1024));
    EXPECT_FALSE(isPowerOfTwo(1000));
}

TEST(Fft, RejectsNonPowerOfTwo)
{
    std::vector<Complex> data(12, Complex(1.0, 0.0));
    EXPECT_THROW(fft(data), ConfigError);
}

TEST(Fft, DcSignalConcentratesInBinZero)
{
    std::vector<double> samples(16, 3.0);
    const auto spectrum = fftReal(samples);
    EXPECT_NEAR(spectrum[0].real(), 48.0, 1e-9);
    for (std::size_t i = 1; i < spectrum.size(); ++i)
        EXPECT_NEAR(std::abs(spectrum[i]), 0.0, 1e-9);
}

TEST(Fft, PureToneLandsInExpectedBin)
{
    const std::size_t n = 64;
    const double sample_rate = 64.0;
    const double freq = 8.0; // bin 8 exactly
    std::vector<double> samples(n);
    for (std::size_t i = 0; i < n; ++i)
        samples[i] = std::sin(2.0 * std::numbers::pi * freq *
                              static_cast<double>(i) / sample_rate);
    const auto mags = magnitudeSpectrum(samples);
    std::size_t best = 0;
    for (std::size_t i = 1; i < mags.size(); ++i)
        if (mags[i] > mags[best])
            best = i;
    EXPECT_EQ(best, 8u);
    EXPECT_NEAR(mags[8], n / 2.0, 1e-6);
}

TEST(Fft, BinFrequencyMapping)
{
    EXPECT_DOUBLE_EQ(binFrequencyHz(0, 256, 4000.0), 0.0);
    EXPECT_DOUBLE_EQ(binFrequencyHz(128, 256, 4000.0), 2000.0);
    EXPECT_DOUBLE_EQ(binFrequencyHz(16, 256, 4000.0), 250.0);
    EXPECT_THROW(binFrequencyHz(1, 0, 4000.0), ConfigError);
}

TEST(Fft, LinearityProperty)
{
    Rng rng(3);
    std::vector<double> a(32), b(32), sum(32);
    for (std::size_t i = 0; i < 32; ++i) {
        a[i] = rng.uniform(-1.0, 1.0);
        b[i] = rng.uniform(-1.0, 1.0);
        sum[i] = 2.0 * a[i] + 3.0 * b[i];
    }
    const auto fa = fftReal(a);
    const auto fb = fftReal(b);
    const auto fsum = fftReal(sum);
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_NEAR(std::abs(fsum[i] - (2.0 * fa[i] + 3.0 * fb[i])),
                    0.0, 1e-9);
}

TEST(Fft, ParsevalProperty)
{
    Rng rng(5);
    std::vector<double> samples(128);
    double time_energy = 0.0;
    for (auto &s : samples) {
        s = rng.uniform(-1.0, 1.0);
        time_energy += s * s;
    }
    const auto spectrum = fftReal(samples);
    double freq_energy = 0.0;
    for (const auto &bin : spectrum)
        freq_energy += std::norm(bin);
    freq_energy /= static_cast<double>(samples.size());
    EXPECT_NEAR(time_energy, freq_energy, 1e-8);
}

/** Round-trip property across sizes. */
class FftRoundTrip : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(FftRoundTrip, IfftInvertsFft)
{
    const std::size_t n = GetParam();
    Rng rng(n);
    std::vector<double> samples(n);
    for (auto &s : samples)
        s = rng.uniform(-10.0, 10.0);

    const auto restored = ifftToReal(fftReal(samples));
    ASSERT_EQ(restored.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(restored[i], samples[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256,
                                           1024, 4096));

TEST(Fft, MagnitudeSpectrumHasHalfPlusOneBins)
{
    std::vector<double> samples(256, 0.5);
    EXPECT_EQ(magnitudeSpectrum(samples).size(), 129u);
}

} // namespace
} // namespace sidewinder::dsp
