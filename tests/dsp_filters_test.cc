/**
 * @file
 * Unit tests for the filter algorithms: moving average, exponential
 * moving average, and FFT block filters.
 */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "dsp/filters.h"
#include "support/error.h"

namespace sidewinder::dsp {
namespace {

TEST(MovingAverage, RejectsZeroWindow)
{
    EXPECT_THROW(MovingAverage(0), ConfigError);
}

TEST(MovingAverage, NoResultUntilWindowFull)
{
    // Section 3.5 of the paper: a moving average with window N emits
    // nothing for the first N-1 samples.
    MovingAverage ma(3);
    EXPECT_FALSE(ma.push(3.0).has_value());
    EXPECT_FALSE(ma.push(6.0).has_value());
    const auto v = ma.push(9.0);
    ASSERT_TRUE(v.has_value());
    EXPECT_DOUBLE_EQ(*v, 6.0);
}

TEST(MovingAverage, SlidesCorrectly)
{
    MovingAverage ma(2);
    ma.push(1.0);
    EXPECT_DOUBLE_EQ(*ma.push(3.0), 2.0);
    EXPECT_DOUBLE_EQ(*ma.push(5.0), 4.0);
    EXPECT_DOUBLE_EQ(*ma.push(7.0), 6.0);
}

TEST(MovingAverage, ResetClearsHistory)
{
    MovingAverage ma(2);
    ma.push(1.0);
    ma.push(2.0);
    ma.reset();
    EXPECT_FALSE(ma.push(10.0).has_value());
    EXPECT_DOUBLE_EQ(*ma.push(20.0), 15.0);
}

TEST(MovingAverage, ConstantInputYieldsConstantOutput)
{
    MovingAverage ma(10);
    std::optional<double> last;
    for (int i = 0; i < 50; ++i)
        last = ma.push(4.2);
    ASSERT_TRUE(last.has_value());
    EXPECT_NEAR(*last, 4.2, 1e-12);
}

TEST(ExponentialMovingAverage, RejectsBadAlpha)
{
    EXPECT_THROW(ExponentialMovingAverage(0.0), ConfigError);
    EXPECT_THROW(ExponentialMovingAverage(1.5), ConfigError);
    EXPECT_NO_THROW(ExponentialMovingAverage(1.0));
}

TEST(ExponentialMovingAverage, SeedsWithFirstSample)
{
    ExponentialMovingAverage ema(0.5);
    EXPECT_DOUBLE_EQ(ema.push(10.0), 10.0);
    EXPECT_DOUBLE_EQ(ema.push(20.0), 15.0);
}

TEST(ExponentialMovingAverage, ConvergesToConstant)
{
    ExponentialMovingAverage ema(0.3);
    double v = 0.0;
    for (int i = 0; i < 100; ++i)
        v = ema.push(7.0);
    EXPECT_NEAR(v, 7.0, 1e-9);
}

TEST(FftBlockFilter, RejectsBadConfig)
{
    EXPECT_THROW(FftBlockFilter(PassBand::LowPass, 0.0, 100.0),
                 ConfigError);
    EXPECT_THROW(FftBlockFilter(PassBand::LowPass, 60.0, 100.0),
                 ConfigError); // above Nyquist
    EXPECT_THROW(FftBlockFilter(PassBand::LowPass, 10.0, -1.0),
                 ConfigError);
}

TEST(FftBlockFilter, RejectsNonPowerOfTwoFrame)
{
    FftBlockFilter filter(PassBand::LowPass, 10.0, 100.0);
    EXPECT_THROW(filter.apply(std::vector<double>(100, 1.0)),
                 ConfigError);
}

/** Build a two-tone test frame at 5 Hz and 40 Hz (fs = 128 Hz). */
std::vector<double>
twoToneFrame(std::size_t n = 128)
{
    std::vector<double> frame(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / 128.0;
        frame[i] = std::sin(2.0 * std::numbers::pi * 5.0 * t) +
                   std::sin(2.0 * std::numbers::pi * 40.0 * t);
    }
    return frame;
}

/** RMS of the correlation with a tone at @p freq. */
double
toneEnergy(const std::vector<double> &frame, double freq)
{
    double re = 0.0;
    double im = 0.0;
    for (std::size_t i = 0; i < frame.size(); ++i) {
        const double t = static_cast<double>(i) / 128.0;
        re += frame[i] * std::cos(2.0 * std::numbers::pi * freq * t);
        im += frame[i] * std::sin(2.0 * std::numbers::pi * freq * t);
    }
    return std::sqrt(re * re + im * im) /
           static_cast<double>(frame.size());
}

TEST(FftBlockFilter, LowPassRemovesHighTone)
{
    FftBlockFilter filter(PassBand::LowPass, 20.0, 128.0);
    const auto out = filter.apply(twoToneFrame());
    EXPECT_GT(toneEnergy(out, 5.0), 0.4);
    EXPECT_LT(toneEnergy(out, 40.0), 1e-6);
}

TEST(FftBlockFilter, HighPassRemovesLowTone)
{
    FftBlockFilter filter(PassBand::HighPass, 20.0, 128.0);
    const auto out = filter.apply(twoToneFrame());
    EXPECT_LT(toneEnergy(out, 5.0), 1e-6);
    EXPECT_GT(toneEnergy(out, 40.0), 0.4);
}

TEST(FftBlockFilter, OutputStaysReal)
{
    FftBlockFilter filter(PassBand::HighPass, 20.0, 128.0);
    const auto out = filter.apply(twoToneFrame());
    // ifftToReal drops imaginary parts; verify energy conservation of
    // the kept tone instead (real output carries the full tone).
    EXPECT_NEAR(toneEnergy(out, 40.0), 0.5, 0.05);
}

TEST(FftBlockFilter, ComplementaryFiltersSumToInput)
{
    const auto frame = twoToneFrame();
    FftBlockFilter low(PassBand::LowPass, 20.0, 128.0);
    FftBlockFilter high(PassBand::HighPass, 20.0, 128.0);
    const auto lp = low.apply(frame);
    const auto hp = high.apply(frame);
    // Low + high covers every bin except none (cutoff bin is kept by
    // both, but 20 Hz falls between bins for n=128 at fs=128: bin
    // width 1 Hz, bin 20 exactly -> kept twice). Tolerate that bin.
    for (std::size_t i = 0; i < frame.size(); ++i)
        EXPECT_NEAR(lp[i] + hp[i], frame[i], 0.1);
}

} // namespace
} // namespace sidewinder::dsp
