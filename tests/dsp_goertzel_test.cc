/**
 * @file
 * Tests for the Goertzel single-bin probe: agreement with the FFT,
 * tone selectivity, normalization, and its hub kernel.
 */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "dsp/fft.h"
#include "dsp/goertzel.h"
#include "hub/engine.h"
#include "il/parser.h"
#include "support/error.h"
#include "support/rng.h"

namespace sidewinder::dsp {
namespace {

std::vector<double>
tone(double freq, double fs, std::size_t n, double amp = 1.0)
{
    std::vector<double> frame(n);
    for (std::size_t i = 0; i < n; ++i)
        frame[i] = amp * std::sin(2.0 * std::numbers::pi * freq *
                                  static_cast<double>(i) / fs);
    return frame;
}

TEST(Goertzel, RejectsBadArguments)
{
    EXPECT_THROW(goertzelMagnitude({}, 100.0, 1000.0), ConfigError);
    EXPECT_THROW(goertzelMagnitude({1.0}, 0.0, 1000.0), ConfigError);
    EXPECT_THROW(goertzelMagnitude({1.0}, 600.0, 1000.0),
                 ConfigError);
}

TEST(Goertzel, MatchesFftBinOnBinCenteredTone)
{
    // 1000 Hz at fs 4000, n 256 -> exactly bin 64.
    const auto frame = tone(1000.0, 4000.0, 256, 0.7);
    const double g = goertzelMagnitude(frame, 1000.0, 4000.0);
    const auto mags = magnitudeSpectrum(frame);
    EXPECT_NEAR(g, mags[64], 1e-6);
    EXPECT_NEAR(g, 0.7 * 256.0 / 2.0, 1e-6);
}

TEST(Goertzel, AgreesWithFftAcrossRandomBins)
{
    Rng rng(5);
    for (int trial = 0; trial < 10; ++trial) {
        std::vector<double> frame(128);
        for (auto &v : frame)
            v = rng.uniform(-1.0, 1.0);
        const auto mags = magnitudeSpectrum(frame);
        const auto bin =
            static_cast<std::size_t>(rng.uniformInt(1, 63));
        const double freq = binFrequencyHz(bin, 128, 1000.0);
        EXPECT_NEAR(goertzelMagnitude(frame, freq, 1000.0),
                    mags[bin], 1e-6);
    }
}

TEST(Goertzel, SelectiveAgainstOffTargetTones)
{
    const auto frame = tone(1000.0, 4000.0, 256);
    const double on = goertzelMagnitude(frame, 1000.0, 4000.0);
    // Several bins away: strongly attenuated.
    const double off = goertzelMagnitude(frame, 1250.0, 4000.0);
    EXPECT_GT(on, 20.0 * off);
}

TEST(GoertzelRelative, PureToneScoresNearOne)
{
    const auto frame = tone(1000.0, 4000.0, 256, 0.3);
    EXPECT_NEAR(goertzelRelative(frame, 1000.0, 4000.0), 1.0, 0.05);
}

TEST(GoertzelRelative, NoiseScoresNearZero)
{
    Rng rng(9);
    std::vector<double> frame(256);
    for (auto &v : frame)
        v = rng.gaussian(0.0, 0.5);
    EXPECT_LT(goertzelRelative(frame, 1000.0, 4000.0), 0.3);
}

TEST(GoertzelRelative, AmplitudeInvariant)
{
    const auto soft = tone(500.0, 4000.0, 128, 0.01);
    const auto loud = tone(500.0, 4000.0, 128, 10.0);
    EXPECT_NEAR(goertzelRelative(soft, 500.0, 4000.0),
                goertzelRelative(loud, 500.0, 4000.0), 1e-9);
}

TEST(GoertzelKernel, RunsOnTheHub)
{
    hub::Engine engine({{"AUDIO", 4000.0}});
    engine.addCondition(
        1, il::parse("AUDIO -> window(id=1, params={64});\n"
                     "1 -> goertzelRel(id=2, params={1000});\n"
                     "2 -> minThreshold(id=3, params={0.5});\n"
                     "3 -> OUT;\n"));

    // Quiet noise: no wake.
    Rng rng(2);
    for (int i = 0; i < 256; ++i)
        engine.pushSamples({rng.gaussian(0.0, 0.05)}, i * 0.00025);
    EXPECT_TRUE(engine.drainWakeEvents().empty());

    // A 1 kHz tone: wakes.
    for (int i = 0; i < 256; ++i)
        engine.pushSamples(
            {0.3 * std::sin(2.0 * std::numbers::pi * 1000.0 * i /
                            4000.0)},
            0.1 + i * 0.00025);
    EXPECT_FALSE(engine.drainWakeEvents().empty());
}

TEST(GoertzelKernel, ValidatorEnforcesNyquist)
{
    hub::Engine engine({{"AUDIO", 4000.0}});
    EXPECT_THROW(
        engine.addCondition(
            1, il::parse("AUDIO -> window(id=1, params={64});\n"
                         "1 -> goertzel(id=2, params={2500});\n"
                         "2 -> minThreshold(id=3, params={1});\n"
                         "3 -> OUT;\n")),
        ParseError);
}

} // namespace
} // namespace sidewinder::dsp
