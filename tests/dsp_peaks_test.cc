/**
 * @file
 * Unit tests for the streaming peak detector.
 */

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/peaks.h"
#include "support/error.h"

namespace sidewinder::dsp {
namespace {

std::vector<double>
runDetector(PeakDetector &det, const std::vector<double> &samples)
{
    std::vector<double> peaks;
    for (double s : samples)
        if (auto p = det.push(s))
            peaks.push_back(*p);
    return peaks;
}

TEST(PeakDetector, RejectsInvertedBand)
{
    EXPECT_THROW(PeakDetector(PeakPolarity::Maxima, 5.0, 1.0),
                 ConfigError);
}

TEST(PeakDetector, FindsSimpleMaximum)
{
    PeakDetector det(PeakPolarity::Maxima, 2.0, 5.0);
    const auto peaks = runDetector(det, {0.0, 1.0, 3.0, 1.0, 0.0});
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_DOUBLE_EQ(peaks[0], 3.0);
}

TEST(PeakDetector, IgnoresOutOfBandMaximum)
{
    PeakDetector det(PeakPolarity::Maxima, 2.0, 5.0);
    // Peak at 7.0 is above the band; peak at 1.0 below it.
    const auto peaks =
        runDetector(det, {0.0, 7.0, 0.0, 1.0, 0.0});
    EXPECT_TRUE(peaks.empty());
}

TEST(PeakDetector, FindsSimpleMinimum)
{
    PeakDetector det(PeakPolarity::Minima, -6.0, -3.0);
    const auto peaks =
        runDetector(det, {0.0, -2.0, -5.0, -2.0, 0.0});
    ASSERT_EQ(peaks.size(), 1u);
    EXPECT_DOUBLE_EQ(peaks[0], -5.0);
}

TEST(PeakDetector, PlateauIsSinglePeak)
{
    PeakDetector det(PeakPolarity::Maxima, 2.0, 5.0);
    const auto peaks =
        runDetector(det, {0.0, 3.0, 3.0, 3.0, 0.0});
    EXPECT_EQ(peaks.size(), 1u);
}

TEST(PeakDetector, RefractorySuppressesCloseRepeats)
{
    PeakDetector det(PeakPolarity::Maxima, 2.0, 5.0, 4);
    // Two peaks 2 samples apart: second suppressed.
    const auto peaks =
        runDetector(det, {0.0, 3.0, 0.0, 3.0, 0.0});
    EXPECT_EQ(peaks.size(), 1u);
}

TEST(PeakDetector, RefractoryExpires)
{
    PeakDetector det(PeakPolarity::Maxima, 2.0, 5.0, 2);
    const auto peaks = runDetector(
        det, {0.0, 3.0, 0.0, 0.0, 0.0, 3.0, 0.0});
    EXPECT_EQ(peaks.size(), 2u);
}

TEST(PeakDetector, ResetForgetsContext)
{
    PeakDetector det(PeakPolarity::Maxima, 2.0, 5.0);
    det.push(0.0);
    det.push(3.0);
    det.reset();
    // Without reset the next sample would confirm the 3.0 peak.
    EXPECT_FALSE(det.push(0.0).has_value());
}

TEST(PeakDetector, CountsStepsInSyntheticGait)
{
    // Ten sin^2 bumps of amplitude 3.5 with gaps, like the step
    // signature of the trace generators.
    std::vector<double> samples;
    for (int step = 0; step < 10; ++step) {
        for (int i = 0; i < 12; ++i) {
            const double phase =
                static_cast<double>(i) / 12.0;
            samples.push_back(
                3.5 * std::pow(std::sin(std::numbers::pi * phase), 2));
        }
        for (int i = 0; i < 18; ++i)
            samples.push_back(0.0);
    }

    PeakDetector det(PeakPolarity::Maxima, 2.5, 4.5, 15);
    EXPECT_EQ(runDetector(det, samples).size(), 10u);
}

} // namespace
} // namespace sidewinder::dsp
