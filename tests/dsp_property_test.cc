/**
 * @file
 * Property-based tests over the DSP primitives: brute-force
 * equivalences, algebraic identities, and invariant bounds across
 * randomized inputs (parameterized by seed).
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "dsp/features.h"
#include "dsp/fft.h"
#include "dsp/filters.h"
#include "dsp/peaks.h"
#include "dsp/threshold.h"
#include "dsp/window.h"
#include "support/rng.h"

namespace sidewinder::dsp {
namespace {

class DspProperty : public ::testing::TestWithParam<int>
{
  protected:
    Rng rng{static_cast<std::uint64_t>(GetParam())};

    std::vector<double>
    randomSamples(std::size_t n, double lo = -10.0, double hi = 10.0)
    {
        std::vector<double> out(n);
        for (auto &v : out)
            v = rng.uniform(lo, hi);
        return out;
    }
};

TEST_P(DspProperty, MovingAverageMatchesBruteForce)
{
    const auto samples = randomSamples(300);
    const std::size_t window =
        static_cast<std::size_t>(rng.uniformInt(1, 30));

    MovingAverage filter(window);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const auto out = filter.push(samples[i]);
        if (i + 1 < window) {
            EXPECT_FALSE(out.has_value());
            continue;
        }
        double sum = 0.0;
        for (std::size_t k = i + 1 - window; k <= i; ++k)
            sum += samples[k];
        ASSERT_TRUE(out.has_value());
        EXPECT_NEAR(*out, sum / static_cast<double>(window), 1e-9);
    }
}

TEST_P(DspProperty, EmaStaysWithinInputHull)
{
    const auto samples = randomSamples(200, -4.0, 7.0);
    ExponentialMovingAverage ema(rng.uniform(0.05, 1.0));
    for (double s : samples) {
        const double out = ema.push(s);
        EXPECT_GE(out, -4.0 - 1e-9);
        EXPECT_LE(out, 7.0 + 1e-9);
    }
}

TEST_P(DspProperty, FftFilterIsIdempotent)
{
    const auto frame = randomSamples(128);
    FftBlockFilter filter(PassBand::LowPass, rng.uniform(5.0, 50.0),
                          128.0);
    const auto once = filter.apply(frame);
    const auto twice = filter.apply(once);
    for (std::size_t i = 0; i < frame.size(); ++i)
        EXPECT_NEAR(once[i], twice[i], 1e-8);
}

TEST_P(DspProperty, FilterIsLinear)
{
    const auto a = randomSamples(64);
    const auto b = randomSamples(64);
    std::vector<double> sum(64);
    for (std::size_t i = 0; i < 64; ++i)
        sum[i] = a[i] + b[i];

    FftBlockFilter filter(PassBand::HighPass, 20.0, 128.0);
    const auto fa = filter.apply(a);
    const auto fb = filter.apply(b);
    const auto fsum = filter.apply(sum);
    for (std::size_t i = 0; i < 64; ++i)
        EXPECT_NEAR(fsum[i], fa[i] + fb[i], 1e-8);
}

TEST_P(DspProperty, ZcrIsScaleInvariantAndBounded)
{
    const auto frame = randomSamples(100);
    const double zcr = zeroCrossingRate(frame);
    EXPECT_GE(zcr, 0.0);
    EXPECT_LE(zcr, 1.0);

    std::vector<double> scaled = frame;
    const double factor = rng.uniform(0.1, 50.0);
    for (auto &v : scaled)
        v *= factor;
    EXPECT_DOUBLE_EQ(zeroCrossingRate(scaled), zcr);
}

TEST_P(DspProperty, VarianceShiftInvariantScaleQuadratic)
{
    const auto frame = randomSamples(80);
    const double var = variance(frame);

    std::vector<double> shifted = frame;
    const double shift = rng.uniform(-100.0, 100.0);
    for (auto &v : shifted)
        v += shift;
    EXPECT_NEAR(variance(shifted), var, 1e-7);

    std::vector<double> scaled = frame;
    const double factor = rng.uniform(0.5, 3.0);
    for (auto &v : scaled)
        v *= factor;
    EXPECT_NEAR(variance(scaled), var * factor * factor, 1e-6);
}

TEST_P(DspProperty, StatisticsOrdering)
{
    const auto frame = randomSamples(50);
    EXPECT_LE(minimum(frame), mean(frame));
    EXPECT_GE(maximum(frame), mean(frame));
    EXPECT_GE(rootMeanSquare(frame), std::abs(mean(frame)) - 1e-9);
    EXPECT_NEAR(stddev(frame) * stddev(frame), variance(frame), 1e-9);
}

TEST_P(DspProperty, BandAndOutsideBandPartitionTheLine)
{
    const double lo = rng.uniform(-5.0, 0.0);
    const double hi = rng.uniform(0.0, 5.0);
    const Threshold inside(ThresholdKind::Band, lo, hi);
    const Threshold outside(ThresholdKind::OutsideBand, lo, hi);
    for (int i = 0; i < 200; ++i) {
        const double v = rng.uniform(-10.0, 10.0);
        EXPECT_NE(inside.admits(v), outside.admits(v)) << v;
    }
}

TEST_P(DspProperty, PeakCountBoundedByBandwidth)
{
    // A detector with refractory R can report at most N/(R+1)+1
    // peaks over N samples.
    const auto samples = randomSamples(400);
    const std::size_t refractory =
        static_cast<std::size_t>(rng.uniformInt(0, 20));
    PeakDetector det(PeakPolarity::Maxima, -10.0, 10.0, refractory);
    std::size_t count = 0;
    for (double s : samples)
        if (det.push(s))
            ++count;
    EXPECT_LE(count, samples.size() / (refractory + 1) + 1);
}

TEST_P(DspProperty, HammingWindowIsSymmetric)
{
    const std::size_t n =
        static_cast<std::size_t>(rng.uniformInt(4, 512));
    for (std::size_t i = 0; i < n / 2; ++i)
        EXPECT_NEAR(hammingCoefficient(i, n),
                    hammingCoefficient(n - 1 - i, n), 1e-12);
}

TEST_P(DspProperty, SpectrumEnergyNeverExceedsSignalEnergy)
{
    // Parseval with the half-spectrum: the retained bins carry at
    // most the full energy.
    const auto frame = randomSamples(256);
    double time_energy = 0.0;
    for (double v : frame)
        time_energy += v * v;
    const auto mags = magnitudeSpectrum(frame);
    double bin_energy = 0.0;
    for (double m : mags)
        bin_energy += m * m;
    bin_energy /= static_cast<double>(frame.size());
    EXPECT_LE(bin_energy, time_energy + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DspProperty, ::testing::Range(1, 13));

} // namespace
} // namespace sidewinder::dsp
