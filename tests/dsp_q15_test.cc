/**
 * @file
 * Tests for the Q15 fixed-point primitives: saturation at the ±1
 * boundaries, round-to-nearest conversion, round-trip tolerance, and
 * agreement of the Q15 kernels (averages, biquad, Goertzel, FFT) with
 * their double-precision references.
 */

#include <cmath>
#include <numbers>
#include <vector>

#include <gtest/gtest.h>

#include "dsp/fft_plan.h"
#include "dsp/filters.h"
#include "dsp/goertzel.h"
#include "dsp/q15.h"
#include "dsp/threshold.h"
#include "support/error.h"
#include "support/rng.h"

namespace sidewinder::dsp {
namespace {

TEST(Q15Convert, SaturatesAtPlusMinusOne)
{
    EXPECT_EQ(toQ15(1.0), kQ15Max);
    EXPECT_EQ(toQ15(-1.0), kQ15Min);
    EXPECT_EQ(toQ15(2.5), kQ15Max);
    EXPECT_EQ(toQ15(-3.0), kQ15Min);
    EXPECT_EQ(toQ15(1e12), kQ15Max);
    EXPECT_EQ(toQ15(-1e12), kQ15Min);
    // The largest representable value is 1 - 2^-15, not 1.
    EXPECT_EQ(toQ15(1.0 - 1.0 / 32768.0), kQ15Max);
}

TEST(Q15Convert, RoundsToNearest)
{
    // Half a count above zero rounds away from zero (round-to-nearest
    // with ties away, matching llround).
    EXPECT_EQ(toQ15(0.5 / 32768.0), 1);
    EXPECT_EQ(toQ15(0.49 / 32768.0), 0);
    EXPECT_EQ(toQ15(1.49 / 32768.0), 1);
    EXPECT_EQ(toQ15(1.51 / 32768.0), 2);
    EXPECT_EQ(toQ15(-0.49 / 32768.0), 0);
    EXPECT_EQ(toQ15(-1.51 / 32768.0), -2);
}

TEST(Q15Convert, RoundTripExactOnGridAndBoundedOffGrid)
{
    // Exact for every value already on the Q15 grid.
    for (std::int32_t q = kQ15Min; q <= kQ15Max; q += 17)
        EXPECT_EQ(toQ15(fromQ15(static_cast<Q15>(q))), q);
    EXPECT_EQ(toQ15(fromQ15(kQ15Min)), kQ15Min);
    EXPECT_EQ(toQ15(fromQ15(kQ15Max)), kQ15Max);

    // Off-grid values in [-1, 1) round-trip within 2^-16.
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const double x = rng.uniform(-1.0, 1.0 - 1.0 / 32768.0);
        EXPECT_LE(std::abs(fromQ15(toQ15(x)) - x), 1.0 / 65536.0)
            << "x=" << x;
    }
}

TEST(Q15Arithmetic, AddAndSubSaturate)
{
    EXPECT_EQ(q15Add(kQ15Max, 1), kQ15Max);
    EXPECT_EQ(q15Add(kQ15Max, kQ15Max), kQ15Max);
    EXPECT_EQ(q15Add(kQ15Min, -1), kQ15Min);
    EXPECT_EQ(q15Add(kQ15Min, kQ15Min), kQ15Min);
    EXPECT_EQ(q15Add(20000, 20000), kQ15Max);
    EXPECT_EQ(q15Add(100, -30), 70);
    EXPECT_EQ(q15Sub(kQ15Min, 1), kQ15Min);
    EXPECT_EQ(q15Sub(kQ15Max, -1), kQ15Max);
    EXPECT_EQ(q15Sub(kQ15Min, kQ15Max), kQ15Min);
    EXPECT_EQ(q15Sub(-25000, 20000), kQ15Min);
    EXPECT_EQ(q15Sub(100, 30), 70);
}

TEST(Q15Arithmetic, MulRoundsAndSaturatesOnlyAtMinTimesMin)
{
    // -1 * -1 = +1 is the one unrepresentable product.
    EXPECT_EQ(q15Mul(kQ15Min, kQ15Min), kQ15Max);
    // -1 * x == -x for every other operand (exact, no rounding).
    EXPECT_EQ(q15Mul(kQ15Min, kQ15Max), -kQ15Max);
    EXPECT_EQ(q15Mul(kQ15Min, 16384), kQ15Min / 2);
    // Rounding: 0.5 * (1/32768) = half a count, rounds up to 1 count.
    EXPECT_EQ(q15Mul(16384, 1), 1);
    EXPECT_EQ(q15Mul(16384, 3), 2); // 1.5 counts -> 2
    // Agreement with the real product within half a count.
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const Q15 a =
            static_cast<Q15>(rng.uniformInt(kQ15Min, kQ15Max));
        const Q15 b =
            static_cast<Q15>(rng.uniformInt(kQ15Min, kQ15Max));
        if (a == kQ15Min && b == kQ15Min)
            continue;
        EXPECT_NEAR(fromQ15(q15Mul(a, b)), fromQ15(a) * fromQ15(b),
                    0.5 / 32768.0 + 1e-12);
    }
}

TEST(Q15Convert, QuantizeDequantizeArrays)
{
    const std::vector<double> in = {0.0, 0.5, -0.25, 1.0, -1.0, 0.999};
    std::vector<Q15> q(in.size());
    std::vector<double> back(in.size());
    quantizeQ15(in.data(), q.data(), in.size());
    dequantizeQ15(q.data(), back.data(), in.size());
    for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(q[i], toQ15(in[i]));
        const double clamped =
            std::min(std::max(in[i], -1.0), 1.0 - 1.0 / 32768.0);
        EXPECT_NEAR(back[i], clamped, 1.0 / 65536.0);
    }
}

TEST(Q15MovingAverageTest, MatchesDoubleReferenceWithinOneCount)
{
    Q15MovingAverage fixed(8);
    MovingAverage reference(8);
    Rng rng(11);
    int emitted = 0;
    for (int i = 0; i < 500; ++i) {
        const double x = rng.uniform(-1.0, 1.0 - 1.0 / 32768.0);
        const Q15 q = toQ15(x);
        const auto got = fixed.push(q);
        // Drive the reference with the quantized value so the only
        // divergence is the rounded divide.
        const auto want = reference.push(fromQ15(q));
        ASSERT_EQ(got.has_value(), want.has_value()) << "i=" << i;
        if (got) {
            ++emitted;
            EXPECT_NEAR(fromQ15(*got), *want, 1.0 / 32768.0);
        }
    }
    EXPECT_EQ(emitted, 500 - 7); // fills after windowSize samples
    EXPECT_EQ(fixed.windowSize(), 8u);
}

TEST(Q15ExponentialMovingAverageTest, SeedsAndTracksReference)
{
    Q15ExponentialMovingAverage fixed(0.25);
    ExponentialMovingAverage reference(0.25);
    // Seeds on the first sample exactly.
    EXPECT_EQ(fixed.push(toQ15(0.5)), toQ15(0.5));
    reference.push(fromQ15(toQ15(0.5)));
    Rng rng(13);
    for (int i = 0; i < 300; ++i) {
        const Q15 q = toQ15(rng.uniform(-0.9, 0.9));
        const double got = fromQ15(fixed.push(q));
        const double want = reference.push(fromQ15(q));
        // alpha itself is quantized to Q15, so allow a small drift on
        // top of per-step rounding.
        EXPECT_NEAR(got, want, 4.0 / 32768.0) << "i=" << i;
    }
}

TEST(Q15BiquadTest, TracksDoubleBiquadOnLowpass)
{
    // Butterworth-ish lowpass section, |coefficients| < 2 (Q14 range).
    const double b0 = 0.2066, b1 = 0.4131, b2 = 0.2066;
    const double a1 = -0.3695, a2 = 0.1958;
    Q15Biquad fixed(b0, b1, b2, a1, a2);
    double x1 = 0, x2 = 0, y1 = 0, y2 = 0;
    Rng rng(17);
    for (int i = 0; i < 400; ++i) {
        const Q15 q = toQ15(rng.uniform(-0.5, 0.5));
        const double x = fromQ15(q);
        const double y = b0 * x + b1 * x1 + b2 * x2 - a1 * y1 - a2 * y2;
        x2 = x1;
        x1 = x;
        y2 = y1;
        y1 = y;
        // Q14 coefficient quantization (2^-14) plus state rounding
        // accumulate; a stable section stays within a few counts.
        EXPECT_NEAR(fromQ15(fixed.push(q)), y, 8.0 / 32768.0)
            << "i=" << i;
    }
}

TEST(Q15ThresholdTest, MatchesDoubleThresholdPredicates)
{
    const struct
    {
        ThresholdKind kind;
        double low, high;
    } cases[] = {
        {ThresholdKind::Min, 0.25, 0.25},
        {ThresholdKind::Max, -0.125, -0.125},
        {ThresholdKind::Band, -0.5, 0.5},
        {ThresholdKind::OutsideBand, -0.0625, 0.0625},
    };
    Rng rng(19);
    for (const auto &c : cases) {
        const bool banded = c.kind == ThresholdKind::Band ||
                            c.kind == ThresholdKind::OutsideBand;
        Q15Threshold fixed(c.kind, c.low, c.high);
        Threshold reference = banded
                                  ? Threshold(c.kind, c.low, c.high)
                                  : Threshold(c.kind, c.low);
        for (int i = 0; i < 1000; ++i) {
            // Probe on the Q15 grid so quantizing the limits (which
            // are themselves on the grid here) changes nothing.
            const Q15 q =
                static_cast<Q15>(rng.uniformInt(kQ15Min, kQ15Max));
            EXPECT_EQ(fixed.admits(q), reference.admits(fromQ15(q)))
                << "kind=" << static_cast<int>(c.kind)
                << " q=" << static_cast<int>(q);
            EXPECT_EQ(fixed.push(q).has_value(), fixed.admits(q));
        }
    }
}

TEST(Q15GoertzelTest, AgreesWithDoubleGoertzelOnTone)
{
    // 1000 Hz tone at fs 4000, n 256 -> exactly bin 64.
    const std::size_t n = 256;
    std::vector<double> frame(n);
    for (std::size_t i = 0; i < n; ++i)
        frame[i] = 0.6 * std::sin(2.0 * std::numbers::pi * 1000.0 *
                                  static_cast<double>(i) / 4000.0);
    std::vector<Q15> q(n);
    quantizeQ15(frame.data(), q.data(), n);
    std::vector<double> dq(n);
    dequantizeQ15(q.data(), dq.data(), n);

    const double want = goertzelMagnitude(dq, 1000.0, 4000.0);
    const double got = q15GoertzelMagnitude(q.data(), n, 1000.0, 4000.0);
    // Magnitude scales with N/2; tolerate ~1% from Q14 coefficient
    // rounding in the recurrence.
    EXPECT_NEAR(got, want, 0.01 * want);

    const double rel = q15GoertzelRelative(q.data(), n, 1000.0, 4000.0);
    const double rel_want = goertzelRelative(dq, 1000.0, 4000.0);
    EXPECT_NEAR(rel, rel_want, 0.05);
    // A strong on-bin tone dominates the frame energy.
    EXPECT_GT(rel, 0.5);
}

TEST(Q15FftPlanTest, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(Q15FftPlan(0), ConfigError);
    EXPECT_THROW(Q15FftPlan(12), ConfigError);
    EXPECT_NO_THROW(Q15FftPlan(64));
}

TEST(Q15FftPlanTest, ForwardMatchesScaledDoubleFft)
{
    const std::size_t n = 128;
    Rng rng(23);
    std::vector<double> x(n);
    for (auto &v : x)
        v = rng.uniform(-0.9, 0.9);
    std::vector<Q15> re(n), im(n, 0);
    quantizeQ15(x.data(), re.data(), n);
    std::vector<double> dq(n);
    dequantizeQ15(re.data(), dq.data(), n);

    const Q15FftPlan plan(n);
    plan.forward(re.data(), im.data());

    std::vector<Complex> want;
    FftPlan::forSize(n)->forwardReal(dq, want);
    // forward() scales by 1/N; per-stage rounding injects up to ~1
    // count per stage (log2(128) = 7 stages).
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_NEAR(fromQ15(re[k]),
                    want[k].real() / static_cast<double>(n),
                    8.0 / 32768.0)
            << "bin " << k;
        EXPECT_NEAR(fromQ15(im[k]),
                    want[k].imag() / static_cast<double>(n),
                    8.0 / 32768.0)
            << "bin " << k;
    }
}

TEST(Q15FftPlanTest, InverseRoundTripsForward)
{
    const std::size_t n = 64;
    Rng rng(29);
    std::vector<Q15> re(n), im(n, 0), orig(n);
    for (std::size_t i = 0; i < n; ++i) {
        re[i] = toQ15(rng.uniform(-0.9, 0.9));
        orig[i] = re[i];
    }
    const Q15FftPlan plan(n);
    plan.forward(re.data(), im.data());
    plan.inverse(re.data(), im.data());
    // inverse(forward(x)) ~= x: forward's 1/N scaling cancels the
    // unscaled inverse's N gain. The inverse amplifies forward's
    // per-stage rounding noise back up by N, so the round-trip error
    // is on the order of tens of counts, not one.
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(fromQ15(re[i]), fromQ15(orig[i]), 96.0 / 32768.0)
            << "i=" << i;
        EXPECT_NEAR(fromQ15(im[i]), 0.0, 96.0 / 32768.0) << "i=" << i;
    }
}

TEST(Q15FftPlanTest, ForSizeCachesPerSize)
{
    const auto a = Q15FftPlan::forSize(256);
    const auto b = Q15FftPlan::forSize(256);
    const auto c = Q15FftPlan::forSize(128);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_NE(a.get(), c.get());
    EXPECT_EQ(a->size(), 256u);
}

TEST(Q15RamModel, SampleIsTwoBytes)
{
    // The analyzer charges 2 bytes per retained sample
    // (il::nodeRamBytes); the Q15 type is that sample format.
    static_assert(sizeof(Q15) == 2);
    EXPECT_EQ(sizeof(Q15), 2u);
}

} // namespace
} // namespace sidewinder::dsp
