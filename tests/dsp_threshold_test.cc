/**
 * @file
 * Unit tests for admission-control thresholds.
 */

#include <gtest/gtest.h>

#include "dsp/threshold.h"
#include "support/error.h"

namespace sidewinder::dsp {
namespace {

TEST(Threshold, MinAdmitsAtOrAbove)
{
    Threshold t(ThresholdKind::Min, 15.0);
    EXPECT_FALSE(t.push(14.9).has_value());
    EXPECT_TRUE(t.push(15.0).has_value());
    EXPECT_DOUBLE_EQ(*t.push(20.0), 20.0);
}

TEST(Threshold, MaxAdmitsAtOrBelow)
{
    Threshold t(ThresholdKind::Max, 3.0);
    EXPECT_TRUE(t.admits(3.0));
    EXPECT_TRUE(t.admits(-100.0));
    EXPECT_FALSE(t.admits(3.1));
}

TEST(Threshold, BandAdmitsInside)
{
    Threshold t(ThresholdKind::Band, 2.0, 4.0);
    EXPECT_FALSE(t.admits(1.9));
    EXPECT_TRUE(t.admits(2.0));
    EXPECT_TRUE(t.admits(3.0));
    EXPECT_TRUE(t.admits(4.0));
    EXPECT_FALSE(t.admits(4.1));
}

TEST(Threshold, OutsideBandAdmitsOutside)
{
    Threshold t(ThresholdKind::OutsideBand, 2.0, 4.0);
    EXPECT_TRUE(t.admits(1.9));
    EXPECT_FALSE(t.admits(3.0));
    EXPECT_TRUE(t.admits(4.1));
}

TEST(Threshold, KindLimitAccessors)
{
    Threshold t(ThresholdKind::Band, 2.0, 4.0);
    EXPECT_EQ(t.kind(), ThresholdKind::Band);
    EXPECT_DOUBLE_EQ(t.lowLimit(), 2.0);
    EXPECT_DOUBLE_EQ(t.highLimit(), 4.0);
}

TEST(Threshold, RejectsWrongConstructorForm)
{
    EXPECT_THROW(Threshold(ThresholdKind::Band, 1.0), ConfigError);
    EXPECT_THROW(Threshold(ThresholdKind::Min, 1.0, 2.0), ConfigError);
    EXPECT_THROW(Threshold(ThresholdKind::Band, 4.0, 2.0), ConfigError);
}

} // namespace
} // namespace sidewinder::dsp
