/**
 * @file
 * Unit tests for windowing: coefficients, partitioning, overlap.
 */

#include <gtest/gtest.h>

#include "dsp/window.h"
#include "support/error.h"

namespace sidewinder::dsp {
namespace {

TEST(HammingCoefficient, EndpointsAndCenter)
{
    EXPECT_NEAR(hammingCoefficient(0, 11), 0.08, 1e-12);
    EXPECT_NEAR(hammingCoefficient(10, 11), 0.08, 1e-12);
    EXPECT_NEAR(hammingCoefficient(5, 11), 1.0, 1e-12);
}

TEST(HammingCoefficient, DegenerateWindowIsUnity)
{
    EXPECT_DOUBLE_EQ(hammingCoefficient(0, 1), 1.0);
}

TEST(ApplyWindow, RectangularIsIdentity)
{
    std::vector<double> frame = {1.0, 2.0, 3.0};
    applyWindow(frame, WindowType::Rectangular);
    EXPECT_EQ(frame, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(ApplyWindow, HammingScalesEdgesDown)
{
    std::vector<double> frame(8, 1.0);
    applyWindow(frame, WindowType::Hamming);
    EXPECT_NEAR(frame[0], 0.08, 1e-12);
    EXPECT_LT(frame[0], frame[4]);
}

TEST(WindowPartitioner, RejectsBadConfig)
{
    EXPECT_THROW(WindowPartitioner(0), ConfigError);
    EXPECT_THROW(WindowPartitioner(4, WindowType::Rectangular, 5),
                 ConfigError);
}

TEST(WindowPartitioner, EmitsAfterSizeSamples)
{
    WindowPartitioner part(3);
    EXPECT_FALSE(part.push(1.0).has_value());
    EXPECT_FALSE(part.push(2.0).has_value());
    const auto frame = part.push(3.0);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(*frame, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(WindowPartitioner, NonOverlappingByDefault)
{
    WindowPartitioner part(2);
    part.push(1.0);
    ASSERT_TRUE(part.push(2.0).has_value());
    EXPECT_FALSE(part.push(3.0).has_value());
    const auto frame = part.push(4.0);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(*frame, (std::vector<double>{3.0, 4.0}));
}

TEST(WindowPartitioner, OverlapKeepsTail)
{
    WindowPartitioner part(4, WindowType::Rectangular, 2);
    part.push(1.0);
    part.push(2.0);
    part.push(3.0);
    ASSERT_TRUE(part.push(4.0).has_value());
    part.push(5.0);
    const auto frame = part.push(6.0);
    ASSERT_TRUE(frame.has_value());
    EXPECT_EQ(*frame, (std::vector<double>{3.0, 4.0, 5.0, 6.0}));
}

TEST(WindowPartitioner, ResetDropsPartialFrame)
{
    WindowPartitioner part(3);
    part.push(1.0);
    part.push(2.0);
    part.reset();
    EXPECT_FALSE(part.push(3.0).has_value());
    EXPECT_FALSE(part.push(4.0).has_value());
    EXPECT_TRUE(part.push(5.0).has_value());
}

TEST(WindowPartitioner, HammingAppliedPerFrame)
{
    WindowPartitioner part(4, WindowType::Hamming);
    part.push(1.0);
    part.push(1.0);
    part.push(1.0);
    const auto frame = part.push(1.0);
    ASSERT_TRUE(frame.has_value());
    EXPECT_NEAR((*frame)[0], 0.08, 1e-12);
    EXPECT_GT((*frame)[1], (*frame)[0]);
}

/** Property: with hop h, frames start every h samples. */
class PartitionerHop : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(PartitionerHop, FrameCadenceMatchesHop)
{
    const std::size_t hop = GetParam();
    const std::size_t size = 8;
    WindowPartitioner part(size, WindowType::Rectangular, hop);

    std::size_t frames = 0;
    const std::size_t total = 100;
    for (std::size_t i = 0; i < total; ++i)
        if (part.push(static_cast<double>(i)))
            ++frames;

    // First frame after `size` samples, then one per `hop`.
    const std::size_t expected = 1 + (total - size) / hop;
    EXPECT_EQ(frames, expected);
}

INSTANTIATE_TEST_SUITE_P(Hops, PartitionerHop,
                         ::testing::Values(1, 2, 4, 8));

} // namespace
} // namespace sidewinder::dsp
