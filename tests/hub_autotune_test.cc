/**
 * @file
 * Tests for threshold self-tuning from application feedback (Section
 * 7 future work).
 */

#include <gtest/gtest.h>

#include "hub/autotune.h"
#include "hub/engine.h"
#include "il/parser.h"
#include "support/error.h"

namespace sidewinder::hub {
namespace {

std::vector<il::ChannelInfo>
oneChannel()
{
    return {{"ACC_X", 50.0}};
}

il::Program
minThresholdProgram(double limit)
{
    return il::parse("ACC_X -> minThreshold(id=1, params={" +
                     std::to_string(limit) + "});\n1 -> OUT;\n");
}

/** Count wake-ups when feeding @p value for @p n samples. */
std::size_t
wakesFor(Engine &engine, double value, int n)
{
    for (int i = 0; i < n; ++i)
        engine.pushSamples({value}, i * 0.02);
    return engine.drainWakeEvents().size();
}

TEST(AutoTune, RequiresATunableStage)
{
    Engine engine(oneChannel());
    EXPECT_THROW(
        ThresholdAutoTuner(engine, 1,
                           il::parse("ACC_X -> movingAvg(id=1, "
                                     "params={5});\n1 -> OUT;\n")),
        ConfigError);
}

TEST(AutoTune, InstallsAtConstruction)
{
    Engine engine(oneChannel());
    ThresholdAutoTuner tuner(engine, 1, minThresholdProgram(10.0));
    EXPECT_TRUE(engine.hasCondition(1));
    EXPECT_DOUBLE_EQ(tuner.currentScale(), 1.0);
    EXPECT_GT(wakesFor(engine, 12.0, 5), 0u);
}

TEST(AutoTune, FalsePositiveStreakTightens)
{
    Engine engine(oneChannel());
    AutoTuneConfig config;
    config.falsePositiveStreak = 3;
    config.tightenFactor = 1.5;
    ThresholdAutoTuner tuner(engine, 1, minThresholdProgram(10.0),
                             config);

    // A distractor at 12 wakes the device; the app rejects it.
    EXPECT_GT(wakesFor(engine, 12.0, 1), 0u);
    tuner.reportFalsePositive();
    tuner.reportFalsePositive();
    EXPECT_DOUBLE_EQ(tuner.currentScale(), 1.0); // not yet
    tuner.reportFalsePositive();
    EXPECT_DOUBLE_EQ(tuner.currentScale(), 1.5);
    EXPECT_EQ(tuner.retuneCount(), 1u);

    // The distractor at 12 no longer wakes (threshold now 15); a
    // real event at 20 still does.
    EXPECT_EQ(wakesFor(engine, 12.0, 5), 0u);
    EXPECT_GT(wakesFor(engine, 20.0, 1), 0u);
}

TEST(AutoTune, TruePositivesResetTheStreak)
{
    Engine engine(oneChannel());
    AutoTuneConfig config;
    config.falsePositiveStreak = 2;
    ThresholdAutoTuner tuner(engine, 1, minThresholdProgram(10.0),
                             config);
    tuner.reportFalsePositive();
    tuner.reportTruePositive();
    tuner.reportFalsePositive();
    EXPECT_DOUBLE_EQ(tuner.currentScale(), 1.0);
}

TEST(AutoTune, SustainedTruePositivesRelax)
{
    Engine engine(oneChannel());
    AutoTuneConfig config;
    config.falsePositiveStreak = 1;
    config.tightenFactor = 2.0;
    config.relaxAfterTruePositives = 5;
    config.relaxFactor = 0.5;
    ThresholdAutoTuner tuner(engine, 1, minThresholdProgram(10.0),
                             config);

    tuner.reportFalsePositive();
    EXPECT_DOUBLE_EQ(tuner.currentScale(), 2.0);
    for (int i = 0; i < 5; ++i)
        tuner.reportTruePositive();
    EXPECT_DOUBLE_EQ(tuner.currentScale(), 1.0);
}

TEST(AutoTune, ScaleIsBounded)
{
    Engine engine(oneChannel());
    AutoTuneConfig config;
    config.falsePositiveStreak = 1;
    config.tightenFactor = 10.0;
    config.maxScale = 3.0;
    ThresholdAutoTuner tuner(engine, 1, minThresholdProgram(10.0),
                             config);
    tuner.reportFalsePositive();
    tuner.reportFalsePositive();
    EXPECT_DOUBLE_EQ(tuner.currentScale(), 3.0);
}

TEST(AutoTune, BandThresholdShrinksAroundCenter)
{
    Engine engine(oneChannel());
    AutoTuneConfig config;
    config.falsePositiveStreak = 1;
    config.tightenFactor = 2.0;
    ThresholdAutoTuner tuner(
        engine, 1,
        il::parse("ACC_X -> bandThreshold(id=1, params={2,6});\n"
                  "1 -> OUT;\n"),
        config);

    // Band edges wake initially.
    EXPECT_GT(wakesFor(engine, 2.5, 1), 0u);
    tuner.reportFalsePositive();
    // Band is now [3, 5]: 2.5 is excluded, 4 still admitted.
    EXPECT_EQ(wakesFor(engine, 2.5, 5), 0u);
    EXPECT_GT(wakesFor(engine, 4.0, 1), 0u);
}

TEST(AutoTune, OtherConditionsUnaffectedByRetuning)
{
    Engine engine(oneChannel());
    engine.addCondition(7, minThresholdProgram(10.0));
    AutoTuneConfig config;
    config.falsePositiveStreak = 1;
    config.tightenFactor = 2.0;
    ThresholdAutoTuner tuner(engine, 1, minThresholdProgram(10.0),
                             config);
    tuner.reportFalsePositive();

    // Condition 7 still wakes at the original threshold.
    for (int i = 0; i < 3; ++i)
        engine.pushSamples({12.0}, i * 0.02);
    bool condition7_fired = false;
    for (const auto &event : engine.drainWakeEvents())
        condition7_fired |= event.conditionId == 7;
    EXPECT_TRUE(condition7_fired);
}

} // namespace
} // namespace sidewinder::hub
