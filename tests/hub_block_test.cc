/**
 * @file
 * Block-execution tests: pushBlock() interleaved with per-sample
 * pushes, cycle accounting, Q15-mode parity with the double pipeline
 * on the shipped applications, the Q15 RAM model, and HubRuntime
 * block ingestion against its per-sample path.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "apps/apps.h"
#include "dsp/q15.h"
#include "hub/engine.h"
#include "hub/mcu.h"
#include "hub/runtime.h"
#include "il/lower.h"
#include "il/parser.h"
#include "support/rng.h"
#include "transport/link.h"
#include "trace/audio_gen.h"
#include "transport/messages.h"

namespace sidewinder::hub {
namespace {

const std::vector<il::ChannelInfo> kChannels = {{"ACC_X", 50.0},
                                                {"ACC_Y", 50.0},
                                                {"ACC_Z", 50.0}};

const char *kMotionIl = "ACC_X -> movingAvg(id=1, params={10});\n"
                        "ACC_Y -> movingAvg(id=2, params={10});\n"
                        "ACC_Z -> movingAvg(id=3, params={10});\n"
                        "1,2,3 -> vectorMagnitude(id=4);\n"
                        "4 -> minThreshold(id=5, params={1.2});\n"
                        "5 -> OUT;\n";

/** Deterministic per-wave stimulus, one value per channel. */
void
fillWave(Rng &rng, int wave, std::vector<double> &values)
{
    for (std::size_t c = 0; c < values.size(); ++c)
        values[c] = std::sin(0.07 * wave *
                             (static_cast<double>(c) + 1.0)) +
                    rng.gaussian(0.0, 0.3);
}

TEST(HubBlock, BlocksAndSingleWavesInterleaveBitIdentically)
{
    // Blocks of varying sizes mixed with single pushes must leave the
    // engine in exactly the per-sample state at every step.
    const il::Program program = il::parse(kMotionIl);
    Engine block_engine(kChannels, true);
    Engine ref(kChannels, true);
    block_engine.addCondition(1, program);
    ref.addCondition(1, program);

    Rng rng(21);
    Rng pattern(22);
    const std::size_t nch = kChannels.size();
    std::vector<double> values(nch);
    std::vector<double> packed;
    std::vector<double> times;
    int wave = 0;
    std::size_t wakes = 0;

    while (wave < 4000) {
        // Alternate single pushes with blocks of 2..97 waves.
        const bool single = pattern.uniform(0.0, 1.0) < 0.3;
        const std::size_t count =
            single ? 1
                   : static_cast<std::size_t>(
                         pattern.uniformInt(2, 97));
        packed.assign(nch * count, 0.0);
        times.resize(count);
        std::vector<WakeEvent> want;
        for (std::size_t w = 0; w < count; ++w) {
            const double t = wave * 0.02;
            fillWave(rng, wave, values);
            for (std::size_t c = 0; c < nch; ++c)
                packed[c * count + w] = values[c];
            times[w] = t;
            ref.pushSamples(values, t);
            for (const auto &event : ref.drainWakeEvents())
                want.push_back(event);
            ++wave;
        }
        if (single)
            block_engine.pushSamples(values, times[0]);
        else
            block_engine.pushBlock(packed.data(), count,
                                   times.data());

        const auto got = block_engine.drainWakeEvents();
        ASSERT_EQ(got.size(), want.size()) << "wave " << wave;
        for (std::size_t e = 0; e < got.size(); ++e) {
            EXPECT_EQ(got[e].conditionId, want[e].conditionId);
            EXPECT_EQ(got[e].timestamp, want[e].timestamp);
            EXPECT_EQ(got[e].value, want[e].value);
        }
        wakes += got.size();
    }

    EXPECT_GT(wakes, 0u);
    EXPECT_EQ(block_engine.rawSnapshot(1), ref.rawSnapshot(1));
    // Firing decisions are identical, so the abstract cycle meter
    // must agree up to floating-point summation order.
    EXPECT_NEAR(block_engine.cyclesConsumed(), ref.cyclesConsumed(),
                1e-6 * ref.cyclesConsumed() + 1e-9);
}

TEST(HubBlock, EvenlySpacedOverloadMatchesExplicitTimestamps)
{
    const il::Program program = il::parse(kMotionIl);
    Engine a(kChannels, true);
    Engine b(kChannels, true);
    a.addCondition(1, program);
    b.addCondition(1, program);

    Rng rng(31);
    const std::size_t nch = kChannels.size();
    const std::size_t count = 256;
    std::vector<double> values(nch);
    std::vector<double> packed(nch * count);
    std::vector<double> times(count);
    const double dt = 0.02;
    for (std::size_t w = 0; w < count; ++w) {
        fillWave(rng, static_cast<int>(w), values);
        for (std::size_t c = 0; c < nch; ++c)
            packed[c * count + w] = values[c];
        times[w] = 5.0 + static_cast<double>(w) * dt;
    }
    a.pushBlock(packed.data(), count, times.data());
    b.pushBlock(packed.data(), count, 5.0, dt);

    const auto ea = a.drainWakeEvents();
    const auto eb = b.drainWakeEvents();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t e = 0; e < ea.size(); ++e) {
        EXPECT_EQ(ea[e].timestamp, eb[e].timestamp);
        EXPECT_EQ(ea[e].value, eb[e].value);
    }
}

TEST(HubBlock, Q15EngineRamAccountingMatchesPlanModel)
{
    // The analyzer charges 2 bytes per retained sample
    // (il::nodeRamBytes); dsp::Q15 is that sample, and a FixedQ15
    // engine's accounting must land on the same plan numbers the
    // admission path gates on.
    static_assert(sizeof(dsp::Q15) == 2);

    const il::Program program = il::parse(kMotionIl);
    const il::ExecutionPlan plan =
        il::lower(program, kChannels, il::LowerOptions{true});

    Engine fixed(kChannels, true, 200, KernelMode::FixedQ15);
    fixed.addCondition(1, plan);
    EXPECT_EQ(fixed.estimatedRamBytes(), plan.cost().ramBytes);
    EXPECT_EQ(fixed.kernelMode(), KernelMode::FixedQ15);

    // Same plan, same accounting in the reference mode: the RAM
    // model is the firmware (Q15) footprint in both.
    Engine floating(kChannels, true, 200, KernelMode::Float64);
    floating.addCondition(1, plan);
    EXPECT_EQ(floating.estimatedRamBytes(), fixed.estimatedRamBytes());
}

TEST(HubBlock, Q15WakeEventsTrackDoublePipelineOnShippedAudioApps)
{
    // The Q15 pipeline is the firmware sample format of the audio
    // hub: microphone samples are natively in [-1, 1), so the three
    // audio applications run the fixed-point kernels at their real
    // input scale. (Accelerometer traces carry values far outside
    // ±1 and would saturate at quantization — the Q15 mode is not
    // the deployment format for those chains.)
    //
    // Documented tolerance: driving both modes with the identical
    // trace, every double-pipeline wake must have a Q15 wake within
    // 0.75 s (a few 256-point hops at 4 kHz), with at least 90%
    // matched and total counts within 15% plus small absolute slack.
    trace::AudioTraceConfig config;
    config.environment = trace::AudioEnvironment::Office;
    config.durationSeconds = 120.0;
    config.seed = 42;
    config.phraseProbability = 0.5;
    const trace::Trace audio = trace::generateAudioTrace(config);

    std::size_t total_double_wakes = 0;
    for (const auto &app : apps::audioApps()) {
        const il::Program p = app->wakeCondition().compile();
        Engine floating(app->channels(), true);
        Engine fixed(app->channels(), true, 200,
                     KernelMode::FixedQ15);
        floating.addCondition(1, p);
        fixed.addCondition(1, p);

        const std::size_t channel =
            audio.channelIndex(app->channels().front().name);
        std::vector<double> values(1);
        std::vector<double> want_times;
        std::vector<double> got_times;
        for (std::size_t i = 0; i < audio.sampleCount(); ++i) {
            values[0] = audio.channels[channel][i];
            const double t = audio.timeOf(i);
            floating.pushSamples(values, t);
            fixed.pushSamples(values, t);
            for (const auto &event : floating.drainWakeEvents())
                want_times.push_back(event.timestamp);
            for (const auto &event : fixed.drainWakeEvents())
                got_times.push_back(event.timestamp);
        }
        total_double_wakes += want_times.size();

        const double slack =
            0.15 * static_cast<double>(want_times.size()) + 4.0;
        EXPECT_NEAR(static_cast<double>(got_times.size()),
                    static_cast<double>(want_times.size()), slack)
            << app->name();

        std::size_t matched = 0;
        std::size_t cursor = 0;
        for (double t : want_times) {
            while (cursor < got_times.size() &&
                   got_times[cursor] < t - 0.75)
                ++cursor;
            if (cursor < got_times.size() &&
                std::abs(got_times[cursor] - t) <= 0.75)
                ++matched;
        }
        if (!want_times.empty())
            EXPECT_GE(static_cast<double>(matched),
                      0.9 * static_cast<double>(want_times.size()))
                << app->name() << " matched " << matched << "/"
                << want_times.size();
    }
    // The traces must actually exercise the wake path.
    EXPECT_GT(total_double_wakes, 0u);
}

// ---------------------------------------------------------------------
// HubRuntime block ingestion: identical frames to the per-sample path.

std::vector<transport::Frame>
drainFrames(transport::LinkPair &link, double now)
{
    transport::FrameDecoder decoder;
    decoder.feed(link.hubToPhone().receive(now));
    std::vector<transport::Frame> frames;
    while (auto frame = decoder.poll())
        frames.push_back(*frame);
    return frames;
}

TEST(HubBlock, RuntimeBlockIngestionMatchesPerSampleFrames)
{
    transport::LinkPair link_a(1e6);
    transport::LinkPair link_b(1e6);
    HubRuntime per_sample(link_a, kChannels, lm4f120());
    HubRuntime block(link_b, kChannels, lm4f120());

    link_a.phoneToHub().sendFrame(
        transport::encodeConfigPush({7, kMotionIl}), 0.0);
    link_b.phoneToHub().sendFrame(
        transport::encodeConfigPush({7, kMotionIl}), 0.0);
    per_sample.pollLink(0.5);
    block.pollLink(0.5);
    ASSERT_EQ(drainFrames(link_a, 1.0).size(), 1u);
    ASSERT_EQ(drainFrames(link_b, 1.0).size(), 1u);

    // Batch-stream one channel so the span-append path runs too.
    per_sample.enableBatchStreaming(0, 32);
    block.enableBatchStreaming(0, 32);

    Rng rng(51);
    const std::size_t nch = kChannels.size();
    const std::size_t count = 64;
    std::vector<double> values(nch);
    std::vector<double> packed(nch * count);
    std::vector<double> times(count);
    int wave = 0;
    for (int blocks = 0; blocks < 30; ++blocks) {
        for (std::size_t w = 0; w < count; ++w) {
            const double t = 1.0 + wave * 0.02;
            fillWave(rng, wave, values);
            for (std::size_t c = 0; c < nch; ++c)
                packed[c * count + w] = values[c];
            times[w] = t;
            per_sample.pushSamples(values, t);
            ++wave;
        }
        block.pushBlock(packed.data(), count, times.data());
    }

    // Within one block, batch flushes land mid-block while wake
    // frames are emitted after the block settles, so WakeUp and
    // SensorBatch frames may interleave differently than per-sample.
    // The per-type streams, however, must match byte for byte.
    const auto split = [](const std::vector<transport::Frame> &all) {
        std::pair<std::vector<transport::Frame>,
                  std::vector<transport::Frame>>
            out;
        for (const auto &frame : all) {
            if (frame.type == transport::MessageType::WakeUp)
                out.first.push_back(frame);
            else if (frame.type ==
                     transport::MessageType::SensorBatch)
                out.second.push_back(frame);
        }
        return out;
    };
    const auto [wakes_a, batches_a] = split(drainFrames(link_a, 1e6));
    const auto [wakes_b, batches_b] = split(drainFrames(link_b, 1e6));
    ASSERT_FALSE(wakes_a.empty());
    ASSERT_FALSE(batches_a.empty());
    // Wake frames match in id/timestamp/value; the attached raw
    // snapshot is documented to be taken after the block settles, so
    // it may trail the per-sample one by up to a block of samples.
    ASSERT_EQ(wakes_a.size(), wakes_b.size());
    for (std::size_t i = 0; i < wakes_a.size(); ++i) {
        const auto a = transport::decodeWakeUp(wakes_a[i]);
        const auto b = transport::decodeWakeUp(wakes_b[i]);
        EXPECT_EQ(a.conditionId, b.conditionId) << "wake " << i;
        EXPECT_EQ(a.timestamp, b.timestamp) << "wake " << i;
        EXPECT_EQ(a.triggerValue, b.triggerValue) << "wake " << i;
        EXPECT_FALSE(b.rawData.empty());
    }
    ASSERT_EQ(batches_a.size(), batches_b.size());
    for (std::size_t i = 0; i < batches_a.size(); ++i)
        EXPECT_EQ(batches_a[i], batches_b[i])
            << "batch frame " << i;
}

} // namespace
} // namespace sidewinder::hub
