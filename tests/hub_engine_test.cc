/**
 * @file
 * Unit and integration tests for the hub dataflow engine: Figure 2
 * semantics, hasResult propagation, conditional chains, combinators,
 * node sharing and removal.
 */

#include <gtest/gtest.h>

#include "hub/engine.h"
#include "il/parser.h"
#include "support/error.h"

namespace sidewinder::hub {
namespace {

std::vector<il::ChannelInfo>
accelChannels()
{
    return {{"ACC_X", 50.0}, {"ACC_Y", 50.0}, {"ACC_Z", 50.0}};
}

const char *significantMotionIl =
    "ACC_X -> movingAvg(id=1, params={10});\n"
    "ACC_Y -> movingAvg(id=2, params={10});\n"
    "ACC_Z -> movingAvg(id=3, params={10});\n"
    "1,2,3 -> vectorMagnitude(id=4);\n"
    "4 -> minThreshold(id=5, params={15});\n"
    "5 -> OUT;\n";

TEST(Engine, RequiresChannels)
{
    EXPECT_THROW(Engine({}), ConfigError);
}

TEST(Engine, RejectsDuplicateConditionIds)
{
    Engine engine(accelChannels());
    engine.addCondition(1, il::parse(significantMotionIl));
    EXPECT_THROW(engine.addCondition(1, il::parse(significantMotionIl)),
                 ConfigError);
}

TEST(Engine, RejectsInvalidProgram)
{
    Engine engine(accelChannels());
    EXPECT_THROW(
        engine.addCondition(1, il::parse("ACC_X -> bogus(id=1);\n"
                                         "1 -> OUT;\n")),
        SidewinderError);
}

TEST(Engine, RejectsWrongSampleArity)
{
    Engine engine(accelChannels());
    EXPECT_THROW(engine.pushSamples({1.0}, 0.0), ConfigError);
}

TEST(Engine, SignificantMotionFiresAboveThreshold)
{
    Engine engine(accelChannels());
    engine.addCondition(1, il::parse(significantMotionIl));

    // Magnitude of (1,1,1)*10-sample average = sqrt(3) < 15: silent.
    for (int i = 0; i < 20; ++i)
        engine.pushSamples({1.0, 1.0, 1.0}, i * 0.02);
    EXPECT_TRUE(engine.drainWakeEvents().empty());

    // Magnitude of (10,10,10) = 17.3 >= 15: fires once per sample
    // after the windows refill with large values.
    for (int i = 0; i < 20; ++i)
        engine.pushSamples({10.0, 10.0, 10.0}, 1.0 + i * 0.02);
    const auto events = engine.drainWakeEvents();
    ASSERT_FALSE(events.empty());
    EXPECT_EQ(events.front().conditionId, 1);
    EXPECT_GE(events.front().value, 15.0);
}

TEST(Engine, MovingAverageWarmupSuppressesOutput)
{
    // Section 3.5: no result until the window has N points; OUT must
    // not fire during warmup even with large samples.
    Engine engine(accelChannels());
    engine.addCondition(1, il::parse(significantMotionIl));
    for (int i = 0; i < 9; ++i)
        engine.pushSamples({20.0, 20.0, 20.0}, i * 0.02);
    EXPECT_TRUE(engine.drainWakeEvents().empty());
    engine.pushSamples({20.0, 20.0, 20.0}, 0.18);
    EXPECT_EQ(engine.drainWakeEvents().size(), 1u);
}

TEST(Engine, WindowedChainFiresAtFrameCadence)
{
    Engine engine({{"AUDIO", 4000.0}});
    engine.addCondition(1,
                        il::parse("AUDIO -> window(id=1, params={8});\n"
                                  "1 -> rms(id=2);\n"
                                  "2 -> minThreshold(id=3, params={0});\n"
                                  "3 -> OUT;\n"));
    for (int i = 0; i < 24; ++i)
        engine.pushSamples({1.0}, i * 0.00025);
    // 24 samples / window 8 = 3 firings.
    EXPECT_EQ(engine.drainWakeEvents().size(), 3u);
}

TEST(Engine, ConsecutiveCountsFramesAndResetsOnMiss)
{
    Engine engine({{"AUDIO", 4000.0}});
    engine.addCondition(
        1, il::parse("AUDIO -> window(id=1, params={4});\n"
                     "1 -> rms(id=2);\n"
                     "2 -> minThreshold(id=3, params={0.5});\n"
                     "3 -> consecutive(id=4, params={3});\n"
                     "4 -> OUT;\n"));

    auto push_frame = [&](double level) {
        for (int i = 0; i < 4; ++i)
            engine.pushSamples({level}, 0.0);
    };

    // Two loud frames, a quiet one, then three loud: only the second
    // run of three reaches the consecutive target.
    push_frame(1.0);
    push_frame(1.0);
    push_frame(0.0);
    EXPECT_TRUE(engine.drainWakeEvents().empty());
    push_frame(1.0);
    push_frame(1.0);
    EXPECT_TRUE(engine.drainWakeEvents().empty());
    push_frame(1.0);
    EXPECT_EQ(engine.drainWakeEvents().size(), 1u);

    // Sustained passing emits only the crossing, not every frame.
    push_frame(1.0);
    push_frame(1.0);
    EXPECT_TRUE(engine.drainWakeEvents().empty());

    // A miss re-arms the crossing.
    push_frame(0.0);
    push_frame(1.0);
    push_frame(1.0);
    push_frame(1.0);
    EXPECT_EQ(engine.drainWakeEvents().size(), 1u);
}

TEST(Engine, AndRequiresBothBranches)
{
    Engine engine({{"AUDIO", 4000.0}});
    engine.addCondition(
        1, il::parse("AUDIO -> window(id=1, params={4});\n"
                     "1 -> rms(id=2);\n"
                     "2 -> minThreshold(id=3, params={0.5});\n"
                     "AUDIO -> window(id=4, params={4});\n"
                     "4 -> max(id=5);\n"
                     "5 -> maxThreshold(id=6, params={2.0});\n"
                     "3,6 -> and(id=7);\n"
                     "7 -> OUT;\n"));

    auto push_frame = [&](double level) {
        for (int i = 0; i < 4; ++i)
            engine.pushSamples({level}, 0.0);
    };

    push_frame(0.1); // rms too low -> branch 3 misses
    EXPECT_TRUE(engine.drainWakeEvents().empty());
    push_frame(3.0); // max too high -> branch 6 misses
    EXPECT_TRUE(engine.drainWakeEvents().empty());
    push_frame(1.0); // both pass
    EXPECT_EQ(engine.drainWakeEvents().size(), 1u);
}

TEST(Engine, OrFiresOnEitherBranch)
{
    Engine engine(accelChannels());
    engine.addCondition(
        1, il::parse("ACC_X -> minThreshold(id=1, params={5});\n"
                     "ACC_Y -> minThreshold(id=2, params={5});\n"
                     "1,2 -> or(id=3);\n"
                     "3 -> OUT;\n"));

    engine.pushSamples({0.0, 0.0, 0.0}, 0.0);
    EXPECT_TRUE(engine.drainWakeEvents().empty());
    engine.pushSamples({9.0, 0.0, 0.0}, 0.1);
    EXPECT_EQ(engine.drainWakeEvents().size(), 1u);
    engine.pushSamples({0.0, 9.0, 0.0}, 0.2);
    EXPECT_EQ(engine.drainWakeEvents().size(), 1u);
}

TEST(Engine, SharesIdenticalNodesAcrossConditions)
{
    Engine engine(accelChannels(), /*share_nodes=*/true);
    engine.addCondition(1, il::parse(significantMotionIl));
    const std::size_t solo = engine.nodeCount();
    engine.addCondition(2, il::parse(significantMotionIl));
    // Identical program: every node is shared.
    EXPECT_EQ(engine.nodeCount(), solo);

    // Both conditions fire from the shared graph.
    for (int i = 0; i < 10; ++i)
        engine.pushSamples({20.0, 20.0, 20.0}, i * 0.02);
    const auto events = engine.drainWakeEvents();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_NE(events[0].conditionId, events[1].conditionId);
}

TEST(Engine, SharesCommonPrefixOnly)
{
    Engine engine(accelChannels(), true);
    engine.addCondition(1, il::parse(significantMotionIl));
    const std::size_t solo = engine.nodeCount();
    // Same pipeline, different threshold: shares all but the last.
    engine.addCondition(
        2, il::parse("ACC_X -> movingAvg(id=1, params={10});\n"
                     "ACC_Y -> movingAvg(id=2, params={10});\n"
                     "ACC_Z -> movingAvg(id=3, params={10});\n"
                     "1,2,3 -> vectorMagnitude(id=4);\n"
                     "4 -> minThreshold(id=5, params={25});\n"
                     "5 -> OUT;\n"));
    EXPECT_EQ(engine.nodeCount(), solo + 1);
}

TEST(Engine, SharingDisabledDuplicatesNodes)
{
    Engine engine(accelChannels(), /*share_nodes=*/false);
    engine.addCondition(1, il::parse(significantMotionIl));
    const std::size_t solo = engine.nodeCount();
    engine.addCondition(2, il::parse(significantMotionIl));
    EXPECT_EQ(engine.nodeCount(), 2 * solo);
}

TEST(Engine, RemoveFreesUnsharedNodes)
{
    Engine engine(accelChannels(), true);
    engine.addCondition(1, il::parse(significantMotionIl));
    const std::size_t solo = engine.nodeCount();
    engine.addCondition(2, il::parse(significantMotionIl));
    engine.removeCondition(2);
    EXPECT_EQ(engine.nodeCount(), solo);
    engine.removeCondition(1);
    EXPECT_EQ(engine.nodeCount(), 0u);
    EXPECT_THROW(engine.removeCondition(1), ConfigError);
}

TEST(Engine, RemovedConditionStopsFiring)
{
    Engine engine(accelChannels());
    engine.addCondition(1, il::parse(significantMotionIl));
    engine.removeCondition(1);
    for (int i = 0; i < 20; ++i)
        engine.pushSamples({20.0, 20.0, 20.0}, i * 0.02);
    EXPECT_TRUE(engine.drainWakeEvents().empty());
}

TEST(Engine, SurvivingConditionUnaffectedByRemoval)
{
    Engine engine(accelChannels(), true);
    engine.addCondition(1, il::parse(significantMotionIl));
    engine.addCondition(2, il::parse(significantMotionIl));
    engine.removeCondition(1);
    for (int i = 0; i < 10; ++i)
        engine.pushSamples({20.0, 20.0, 20.0}, i * 0.02);
    const auto events = engine.drainWakeEvents();
    ASSERT_FALSE(events.empty());
    for (const auto &event : events)
        EXPECT_EQ(event.conditionId, 2);
}

TEST(Engine, RawSnapshotReturnsPrimaryChannelHistory)
{
    Engine engine(accelChannels(), true, 4);
    engine.addCondition(
        1, il::parse("ACC_Y -> minThreshold(id=1, params={100});\n"
                     "1 -> OUT;\n"));
    for (int i = 0; i < 6; ++i)
        engine.pushSamples({0.0, static_cast<double>(i), 0.0},
                           i * 0.02);
    const auto snap = engine.rawSnapshot(1);
    // Primary channel is ACC_Y; the buffer retains the last 4.
    ASSERT_EQ(snap.size(), 4u);
    EXPECT_DOUBLE_EQ(snap.front(), 2.0);
    EXPECT_DOUBLE_EQ(snap.back(), 5.0);
}

TEST(Engine, CycleEstimateGrowsWithConditionsAndSharing)
{
    Engine shared(accelChannels(), true);
    Engine unshared(accelChannels(), false);
    const auto program = il::parse(significantMotionIl);
    shared.addCondition(1, program);
    shared.addCondition(2, program);
    unshared.addCondition(1, program);
    unshared.addCondition(2, program);
    EXPECT_GT(shared.estimatedCyclesPerSecond(), 0.0);
    EXPECT_NEAR(unshared.estimatedCyclesPerSecond(),
                2.0 * shared.estimatedCyclesPerSecond(), 1e-9);
}

TEST(Engine, DynamicCyclesAccumulate)
{
    Engine engine(accelChannels());
    engine.addCondition(1, il::parse(significantMotionIl));
    EXPECT_DOUBLE_EQ(engine.cyclesConsumed(), 0.0);
    engine.pushSamples({1.0, 1.0, 1.0}, 0.0);
    EXPECT_GT(engine.cyclesConsumed(), 0.0);
}

TEST(Engine, StaticEstimateMatchesValidateRates)
{
    const double estimate = Engine::estimateProgramCycles(
        il::parse(significantMotionIl), accelChannels());
    // 3 movingAvg (4 cycles) at 50 Hz + vectorMagnitude (6) at 50 Hz
    // + minThreshold (1) at 50 Hz.
    EXPECT_NEAR(estimate, 3 * 4 * 50.0 + 6 * 50.0 + 1 * 50.0, 1e-9);
}


TEST(Engine, ResetStateDropsSignalHistoryButKeepsConditions)
{
    Engine engine(accelChannels());
    engine.addCondition(1, il::parse(significantMotionIl));

    // Warm the windows nearly to firing, then reset.
    for (int i = 0; i < 9; ++i)
        engine.pushSamples({20.0, 20.0, 20.0}, i * 0.02);
    engine.resetState();
    EXPECT_TRUE(engine.hasCondition(1));
    EXPECT_DOUBLE_EQ(engine.cyclesConsumed(), 0.0);

    // One more sample must NOT fire: the warmup starts over.
    engine.pushSamples({20.0, 20.0, 20.0}, 1.0);
    EXPECT_TRUE(engine.drainWakeEvents().empty());

    // A full warmup fires again.
    for (int i = 0; i < 9; ++i)
        engine.pushSamples({20.0, 20.0, 20.0}, 2.0 + i * 0.02);
    EXPECT_FALSE(engine.drainWakeEvents().empty());
}

} // namespace
} // namespace sidewinder::hub
