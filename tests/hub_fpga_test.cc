/**
 * @file
 * Tests for the FPGA hub backend model (Section 7 future work):
 * placement, fit checking, and the power trade against the MCU hubs.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "core/sensors.h"
#include "hub/fpga.h"
#include "hub/mcu.h"
#include "il/algorithm_info.h"
#include "il/lower.h"
#include "il/parser.h"
#include "support/error.h"

namespace sidewinder::hub {
namespace {

const char *motionIl = "ACC_X -> movingAvg(id=1, params={10});\n"
                       "ACC_Y -> movingAvg(id=2, params={10});\n"
                       "ACC_Z -> movingAvg(id=3, params={10});\n"
                       "1,2,3 -> vectorMagnitude(id=4);\n"
                       "4 -> minThreshold(id=5, params={15});\n"
                       "5 -> OUT;\n";

TEST(Fpga, ModelBasics)
{
    const FpgaModel fpga = ice40Hub();
    EXPECT_GT(fpga.logicCells, 0u);
    EXPECT_GT(fpga.staticPowerMw, 0.0);
    EXPECT_GT(fpga.reconfigSeconds, 0.0);
}

TEST(Fpga, EveryStandardAlgorithmHasABlock)
{
    for (const auto &info : il::standardAlgorithms())
        EXPECT_GT(fpgaCellCost(info.name, 256), 0u) << info.name;
    EXPECT_THROW(fpgaCellCost("quantumSort", 256), ConfigError);
}

TEST(Fpga, PlacesSignificantMotion)
{
    const auto placement = planFpgaPlacement(
        il::parse(motionIl),
        {{"ACC_X", 50.0}, {"ACC_Y", 50.0}, {"ACC_Z", 50.0}},
        ice40Hub());
    EXPECT_TRUE(placement.fits);
    EXPECT_EQ(placement.entries.size(), 5u);
    EXPECT_GT(placement.cellsUsed, 0u);
    EXPECT_GT(placement.dynamicPowerMw, 0.0);
}

TEST(Fpga, RejectsInvalidProgram)
{
    EXPECT_THROW(planFpgaPlacement(
                     il::parse("ACC_X -> bogus(id=1);\n1 -> OUT;\n"),
                     {{"ACC_X", 50.0}}, ice40Hub()),
                 SidewinderError);
}

TEST(Fpga, AllSixAppConditionsFitTheFabric)
{
    for (const auto &app : apps::allApps()) {
        const auto placement =
            planFpgaPlacement(app->wakeCondition().compile(),
                              app->channels(), ice40Hub());
        EXPECT_TRUE(placement.fits)
            << app->name() << " uses " << placement.cellsUsed;
    }
}

TEST(Fpga, PlanAndProgramOverloadsAgreeOnEveryApp)
{
    // The sealed-plan overload is the primary sizing path; the
    // Program convenience overload must price the identical node set
    // (lowering first, so shared subtrees are not double-counted).
    for (const auto &app : apps::allApps()) {
        const il::Program program = app->wakeCondition().compile();
        const auto channels = app->channels();
        const FpgaPlacement from_ast =
            planFpgaPlacement(program, channels, ice40Hub());
        const FpgaPlacement from_plan = planFpgaPlacement(
            il::lower(program, channels), ice40Hub());
        EXPECT_EQ(from_ast.cellsUsed, from_plan.cellsUsed)
            << app->name();
        EXPECT_EQ(from_ast.dynamicPowerMw, from_plan.dynamicPowerMw);
        EXPECT_EQ(from_ast.fits, from_plan.fits);
    }
}

TEST(Fpga, TinyFabricDoesNotFitTheSirenCondition)
{
    FpgaModel tiny = ice40Hub();
    tiny.logicCells = 1000;
    const auto app = apps::makeSirenApp();
    const auto placement = planFpgaPlacement(
        app->wakeCondition().compile(), app->channels(), tiny);
    EXPECT_FALSE(placement.fits);
}

TEST(Fpga, BeatsTheLm4f120OnTheSirenCondition)
{
    // The FPGA's dedicated datapaths make the audio FFT pipeline far
    // cheaper than the Cortex-M4 — the rationale for the paper's
    // planned FPGA prototype.
    const auto app = apps::makeSirenApp();
    const auto placement = planFpgaPlacement(
        app->wakeCondition().compile(), app->channels(), ice40Hub());
    EXPECT_TRUE(placement.fits);
    EXPECT_LT(placement.totalPowerMw(ice40Hub()),
              lm4f120().activePowerMw);
}

TEST(Fpga, AccelConditionsCostMoreThanIdleFabric)
{
    const auto app = apps::makeStepsApp();
    const auto placement = planFpgaPlacement(
        app->wakeCondition().compile(), app->channels(), ice40Hub());
    EXPECT_GT(placement.totalPowerMw(ice40Hub()),
              ice40Hub().staticPowerMw);
}

} // namespace
} // namespace sidewinder::hub
