/**
 * @file
 * Kernel coverage and equivalence tests:
 *  - every algorithm in the standardized table instantiates a kernel
 *    (registry sync);
 *  - pipelines executed by the hub interpreter produce the same
 *    results as the equivalent native dsp/ composition, so the
 *    second-stage classifier and the wake-up condition agree on what
 *    they compute (the "platform implements algorithms once"
 *    property).
 */

#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "dsp/features.h"
#include "dsp/fft.h"
#include "dsp/filters.h"
#include "hub/engine.h"
#include "hub/kernel.h"
#include "il/algorithm_info.h"
#include "il/parser.h"
#include "support/rng.h"

namespace sidewinder::hub {
namespace {

/** Build a minimal valid statement for @p info. */
il::Statement
statementFor(const il::AlgorithmInfo &info)
{
    il::Statement stmt;
    stmt.algorithm = info.name;
    stmt.id = 10;
    for (std::size_t i = 0; i < info.minInputs; ++i)
        stmt.inputs.push_back(il::SourceRef::makeNode(
            static_cast<il::NodeId>(i + 1)));

    // Sensible defaults for each parameter slot.
    if (info.name == "movingAvg" || info.name == "consecutive")
        stmt.params = {4.0};
    else if (info.name == "expMovingAvg")
        stmt.params = {0.5};
    else if (info.name == "window")
        stmt.params = {16.0};
    else if (info.name == "lowPass" || info.name == "highPass" ||
             info.name == "goertzel" || info.name == "goertzelRel")
        stmt.params = {10.0};
    else if (info.name == "minThreshold" ||
             info.name == "maxThreshold")
        stmt.params = {1.0};
    else if (info.name == "bandThreshold" ||
             info.name == "outsideBandThreshold" ||
             info.name == "localMaxima" || info.name == "localMinima")
        stmt.params = {1.0, 2.0};
    return stmt;
}

TEST(KernelRegistry, EveryStandardAlgorithmInstantiates)
{
    for (const auto &info : il::standardAlgorithms()) {
        il::NodeStream input;
        input.kind = info.inputKind;
        input.fireRateHz = 50.0;
        input.baseRateHz = 100.0;
        input.frameSize =
            info.inputKind == il::ValueKind::Scalar ? 0 : 32;
        input.fftSize = 32;

        std::vector<il::NodeStream> inputs(
            statementFor(info).inputs.size(), input);
        EXPECT_NO_THROW({
            auto kernel = makeKernel(statementFor(info), inputs);
            EXPECT_NE(kernel, nullptr);
        }) << info.name;
    }
}

TEST(KernelRegistry, ConditionalFlagsMatchSemantics)
{
    il::NodeStream scalar;
    scalar.kind = il::ValueKind::Scalar;
    scalar.fireRateHz = 50.0;
    scalar.baseRateHz = 50.0;

    auto conditional_of = [&](const char *name) {
        const auto info = il::findAlgorithm(name);
        EXPECT_TRUE(info.has_value());
        std::vector<il::NodeStream> inputs(
            statementFor(*info).inputs.size(), scalar);
        return makeKernel(statementFor(*info), inputs)->conditional();
    };

    EXPECT_TRUE(conditional_of("minThreshold"));
    EXPECT_TRUE(conditional_of("bandThreshold"));
    EXPECT_TRUE(conditional_of("consecutive"));
    EXPECT_FALSE(conditional_of("movingAvg"));
    EXPECT_FALSE(conditional_of("vectorMagnitude"));
}

/** Feed one channel through an engine, returning OUT values. */
std::vector<double>
runEngine(const std::string &il_text,
          const std::vector<double> &samples, double rate = 100.0)
{
    Engine engine({{"CH", rate}});
    engine.addCondition(1, il::parse(il_text));
    std::vector<double> out;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        engine.pushSamples({samples[i]},
                           static_cast<double>(i) / rate);
        for (const auto &event : engine.drainWakeEvents())
            out.push_back(event.value);
    }
    return out;
}

TEST(Equivalence, MovingAverageMatchesNative)
{
    Rng rng(1);
    std::vector<double> samples(200);
    for (auto &s : samples)
        s = rng.uniform(-5.0, 5.0);

    // Hub: movingAvg -> (pass-everything threshold) -> OUT.
    const auto hub_out = runEngine(
        "CH -> movingAvg(id=1, params={7});\n"
        "1 -> minThreshold(id=2, params={-1e9});\n"
        "2 -> OUT;\n",
        samples);

    dsp::MovingAverage native(7);
    std::vector<double> native_out;
    for (double s : samples)
        if (auto v = native.push(s))
            native_out.push_back(*v);

    ASSERT_EQ(hub_out.size(), native_out.size());
    for (std::size_t i = 0; i < hub_out.size(); ++i)
        EXPECT_NEAR(hub_out[i], native_out[i], 1e-12);
}

TEST(Equivalence, WindowedVarianceMatchesNative)
{
    Rng rng(2);
    std::vector<double> samples(512);
    for (auto &s : samples)
        s = rng.uniform(-1.0, 1.0);

    const auto hub_out = runEngine(
        "CH -> window(id=1, params={64});\n"
        "1 -> variance(id=2);\n"
        "2 -> minThreshold(id=3, params={-1e9});\n"
        "3 -> OUT;\n",
        samples);

    std::vector<double> native_out;
    for (std::size_t start = 0; start + 64 <= samples.size();
         start += 64) {
        const std::vector<double> frame(
            samples.begin() + static_cast<long>(start),
            samples.begin() + static_cast<long>(start + 64));
        native_out.push_back(dsp::variance(frame));
    }

    ASSERT_EQ(hub_out.size(), native_out.size());
    for (std::size_t i = 0; i < hub_out.size(); ++i)
        EXPECT_NEAR(hub_out[i], native_out[i], 1e-12);
}

TEST(Equivalence, SpectralChainMatchesNative)
{
    // A 1 kHz tone at 4 kHz: the hub's window/fft/spectrum/
    // dominantFreqHz chain must report the same frequency as the
    // native magnitudeSpectrum + dominantFrequency composition.
    const double rate = 4000.0;
    std::vector<double> samples(1024);
    for (std::size_t i = 0; i < samples.size(); ++i)
        samples[i] = std::sin(2.0 * std::numbers::pi * 1000.0 *
                              static_cast<double>(i) / rate);

    const auto hub_out = runEngine(
        "CH -> window(id=1, params={256});\n"
        "1 -> fft(id=2);\n"
        "2 -> spectrum(id=3);\n"
        "3 -> dominantFreqHz(id=4);\n"
        "4 -> minThreshold(id=5, params={0});\n"
        "5 -> OUT;\n",
        samples, rate);

    ASSERT_EQ(hub_out.size(), 4u); // 1024 / 256 windows
    for (std::size_t w = 0; w < hub_out.size(); ++w) {
        const std::vector<double> frame(
            samples.begin() + static_cast<long>(w * 256),
            samples.begin() + static_cast<long>((w + 1) * 256));
        const auto dom =
            dsp::dominantFrequency(dsp::magnitudeSpectrum(frame));
        EXPECT_NEAR(hub_out[w],
                    dsp::binFrequencyHz(dom.bin, 256, rate), 1e-9);
    }
}

TEST(Equivalence, HighPassChainMatchesNativeFilter)
{
    const double rate = 4000.0;
    std::vector<double> samples(512);
    for (std::size_t i = 0; i < samples.size(); ++i) {
        const double t = static_cast<double>(i) / rate;
        samples[i] = std::sin(2.0 * std::numbers::pi * 200.0 * t) +
                     std::sin(2.0 * std::numbers::pi * 1500.0 * t);
    }

    const auto hub_out = runEngine(
        "CH -> window(id=1, params={256});\n"
        "1 -> highPass(id=2, params={750});\n"
        "2 -> rms(id=3);\n"
        "3 -> minThreshold(id=4, params={0});\n"
        "4 -> OUT;\n",
        samples, rate);

    const dsp::FftBlockFilter native(dsp::PassBand::HighPass, 750.0,
                                     rate);
    ASSERT_EQ(hub_out.size(), 2u);
    for (std::size_t w = 0; w < hub_out.size(); ++w) {
        const std::vector<double> frame(
            samples.begin() + static_cast<long>(w * 256),
            samples.begin() + static_cast<long>((w + 1) * 256));
        EXPECT_NEAR(hub_out[w],
                    dsp::rootMeanSquare(native.apply(frame)), 1e-9);
    }
}

} // namespace
} // namespace sidewinder::hub
