/**
 * @file
 * Tests for the MCU capability model: the paper's sizing findings —
 * the MSP430 runs accelerometer pipelines but not audio-rate FFT
 * pipelines; the siren detector needs the LM4F120 (Section 4 /
 * Table 2).
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "apps/predefined.h"
#include "core/sensors.h"
#include "hub/mcu.h"
#include "support/error.h"

namespace sidewinder::hub {
namespace {

TEST(Mcu, PaperPowerNumbers)
{
    EXPECT_DOUBLE_EQ(msp430().activePowerMw, 3.6);
    EXPECT_DOUBLE_EQ(lm4f120().activePowerMw, 49.4);
}

TEST(Mcu, AvailableListIsCheapestFirst)
{
    const auto &mcus = availableMcus();
    ASSERT_GE(mcus.size(), 2u);
    for (std::size_t i = 1; i < mcus.size(); ++i)
        EXPECT_LE(mcus[i - 1].activePowerMw, mcus[i].activePowerMw);
}

TEST(Mcu, SelectForCostPicksCheapestSufficient)
{
    il::ProgramCost cost;
    cost.cyclesPerSecond = 1000.0;
    EXPECT_EQ(selectMcuForCost(cost).name, "MSP430");
    cost.cyclesPerSecond = 1e6;
    EXPECT_EQ(selectMcuForCost(cost).name, "LM4F120");
    cost.cyclesPerSecond = 1e12;
    EXPECT_THROW(selectMcuForCost(cost), CapabilityError);
}

TEST(Mcu, SelectForCostHonoursRamNotJustCycles)
{
    // The old selectMcuForLoad shortcut sized on cycles alone; a
    // condition can fit the MSP430's cycle budget and still blow its
    // 16 KB of SRAM. The full-cost path must escalate on RAM too.
    il::ProgramCost cost;
    cost.cyclesPerSecond = 1000.0;
    cost.ramBytes = 20 * 1024;
    EXPECT_EQ(selectMcuForCost(cost).name, "LM4F120");
    cost.ramBytes = 64 * 1024;
    EXPECT_THROW(selectMcuForCost(cost), CapabilityError);
}

TEST(Mcu, AccelerometerAppsFitTheMsp430)
{
    for (const auto &app : apps::accelerometerApps()) {
        const auto mcu = selectMcu(app->wakeCondition().compile(),
                                   app->channels());
        EXPECT_EQ(mcu.name, "MSP430") << app->name();
    }
}

TEST(Mcu, SirenNeedsTheLm4f120)
{
    const auto app = apps::makeSirenApp();
    const auto mcu =
        selectMcu(app->wakeCondition().compile(), app->channels());
    EXPECT_EQ(mcu.name, "LM4F120");
}

TEST(Mcu, MusicAndPhraseFitTheMsp430)
{
    // Table 2 of the paper: only the siren detector carries the
    // LM4F120's power cost.
    for (const char *name : {"music", "phrase"}) {
        const auto app = name == std::string("music")
                             ? apps::makeMusicJournalApp()
                             : apps::makePhraseApp();
        const auto mcu = selectMcu(app->wakeCondition().compile(),
                                   app->channels());
        EXPECT_EQ(mcu.name, "MSP430") << name;
    }
}

TEST(Mcu, PredefinedActivitiesFitTheMsp430)
{
    EXPECT_EQ(selectMcu(apps::significantMotionCondition().compile(),
                        core::accelerometerChannels())
                  .name,
              "MSP430");
    EXPECT_EQ(selectMcu(apps::significantSoundCondition().compile(),
                        core::audioChannels())
                  .name,
              "MSP430");
}

TEST(Mcu, RealTimePredicate)
{
    EXPECT_TRUE(canRunInRealTime(msp430(), 49'999.0));
    EXPECT_FALSE(canRunInRealTime(msp430(), 50'001.0));
}

} // namespace
} // namespace sidewinder::hub
