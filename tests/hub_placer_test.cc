/**
 * @file
 * Tests for the negotiated-congestion placer (hub/placer.h):
 * single-condition marginals against the capability models, the
 * fabric-rescue scenario greedy over-provisions, determinism across
 * repeated runs and concurrent callers, ledger soundness on fuzzed
 * workloads, admit-superset-of-greedy on the shipped-app corpus, and
 * a renderPlacementReport golden corpus over the tests/data IL files
 * (regenerate with SW_UPDATE_GOLDENS=1).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/apps.h"
#include "core/sensors.h"
#include "hub/fpga.h"
#include "hub/mcu.h"
#include "hub/placer.h"
#include "il/analyze.h"
#include "il/lower.h"
#include "il/optimize.h"
#include "il/parser.h"
#include "il/plan.h"
#include "support/error.h"
#include "support/rng.h"

namespace sidewinder::hub {
namespace {

namespace apps = sidewinder::apps;
namespace core = sidewinder::core;
namespace il = sidewinder::il;

/** Lowered wake condition of one shipped app, hub-optimized form. */
il::ExecutionPlan
appPlan(const apps::Application &app)
{
    return il::lower(il::optimize(app.wakeCondition().compile()),
                     app.channels());
}

/** Every shipped app's lowered wake condition (incl. gesture/floors). */
std::vector<std::pair<std::string, il::ExecutionPlan>>
shippedPlans()
{
    std::vector<std::pair<std::string, il::ExecutionPlan>> plans;
    for (const auto &app : apps::allApps())
        plans.emplace_back(app->name(), appPlan(*app));
    const auto gesture = apps::makeGestureApp();
    const auto floors = apps::makeFloorsApp();
    plans.emplace_back(gesture->name(), appPlan(*gesture));
    plans.emplace_back(floors->name(), appPlan(*floors));
    return plans;
}

void
expectSameResult(const PlacementResult &a, const PlacementResult &b)
{
    ASSERT_EQ(a.decisions.size(), b.decisions.size());
    for (std::size_t c = 0; c < a.decisions.size(); ++c) {
        EXPECT_EQ(a.decisions[c].executorIndex,
                  b.decisions[c].executorIndex)
            << "condition " << c;
        EXPECT_EQ(a.decisions[c].executorName,
                  b.decisions[c].executorName);
        EXPECT_EQ(a.decisions[c].marginalPowerMw,
                  b.decisions[c].marginalPowerMw);
        EXPECT_EQ(a.decisions[c].wireTarget, b.decisions[c].wireTarget);
    }
    EXPECT_EQ(a.totalPowerMw, b.totalPowerMw);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.ripUps, b.ripUps);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.unplaced, b.unplaced);
}

/** Ledger within capacity on every modeled axis? */
bool
ledgerSound(const ExecutorModel &e, const ExecutorLedger &led)
{
    if (e.cyclesPerSecond > 0.0 &&
        led.cyclesPerSecond > e.cyclesPerSecond)
        return false;
    if (e.ramBytes != 0 && led.ramBytes > e.ramBytes)
        return false;
    if (e.wakeBudgetHz > 0.0 && led.wakeRateHz > e.wakeBudgetHz)
        return false;
    if (e.logicCells != 0 && led.logicCells > e.logicCells)
        return false;
    return true;
}

// ---------------------------------------------------------------------
// Single-condition marginals and the rescue scenario.

TEST(Placer, LightConditionOnMcuLadderHomesOnMsp430)
{
    const il::Program p =
        il::parse("ACC_X -> movingAvg(id=1, params={8});\n"
                  "1 -> minThreshold(id=2, params={1.5});\n"
                  "2 -> OUT;\n");
    const il::ExecutionPlan plan =
        il::lower(p, core::accelerometerChannels());

    // On the MCU ladder the cheapest sufficient part wins, at exactly
    // its active power (the old selectMcu answer).
    const PlacementDecision home = placeCondition(
        plan, {mcuExecutor(msp430()), mcuExecutor(lm4f120())});
    ASSERT_TRUE(home.placed());
    EXPECT_EQ(home.executorName, msp430().name);
    EXPECT_EQ(home.kind, ExecutorKind::Mcu);
    EXPECT_EQ(home.marginalPowerMw, msp430().activePowerMw);
    EXPECT_EQ(home.wireTarget, "hub:" + msp430().name);

    // Across the whole platform the 1.2 mW fabric undercuts even the
    // MSP430 when the condition has fabric blocks.
    const PlacementDecision platform =
        placeCondition(plan, platformExecutors());
    ASSERT_TRUE(platform.placed());
    EXPECT_EQ(platform.kind, ExecutorKind::Fpga);
    EXPECT_LT(platform.marginalPowerMw, msp430().activePowerMw);
}

TEST(Placer, FpgaOnlySpaceMatchesPlanFpgaPlacement)
{
    const auto siren = apps::makeSirenApp();
    const il::ExecutionPlan plan = appPlan(*siren);
    const FpgaModel fpga = ice40Hub();

    const PlacementDecision home =
        placeCondition(plan, {fpgaExecutor(fpga)});
    const FpgaPlacement reference = planFpgaPlacement(plan, fpga);
    ASSERT_TRUE(reference.fits);
    ASSERT_TRUE(home.placed());
    EXPECT_EQ(home.executorName, fpga.name);
    // Sole tenant: marginal = static + dynamic = the old total.
    EXPECT_DOUBLE_EQ(home.marginalPowerMw,
                     reference.totalPowerMw(fpga));
}

/**
 * The acceptance scenario: an audio FFT pipeline outgrows the MSP430,
 * so the greedy ladder over-provisions it onto the LM4F120 (49.4 mW);
 * the negotiated placer sees the whole space and homes it on the
 * fabric for an order of magnitude less power.
 */
TEST(Placer, RescuesAudioFftFromLm4f120OntoFabric)
{
    const auto siren = apps::makeSirenApp();
    const il::ExecutionPlan plan = appPlan(*siren);

    Placer placer(platformExecutors());
    placer.addCondition(plan);
    const PlacementDecision greedy =
        placer.placeGreedy().decisions.front();
    const PlacementDecision negotiated =
        placer.place().decisions.front();

    ASSERT_TRUE(greedy.placed());
    ASSERT_TRUE(negotiated.placed());
    EXPECT_EQ(greedy.executorName, lm4f120().name);
    EXPECT_EQ(negotiated.kind, ExecutorKind::Fpga);
    EXPECT_LT(negotiated.marginalPowerMw,
              0.25 * greedy.marginalPowerMw);
}

TEST(Placer, ApFallbackMakesPlacementTotal)
{
    // A condition past the MSP430's budgets is rejected on an
    // MSP430-only space but always homed somewhere on the full
    // platform (the AP fallback is unbounded).
    const auto siren = apps::makeSirenApp();
    const il::ExecutionPlan plan = appPlan(*siren);

    std::vector<ExecutorModel> mcus_only = {mcuExecutor(msp430())};
    const PlacementDecision rejected = placeCondition(plan, mcus_only);
    EXPECT_FALSE(rejected.placed());

    const PlacementDecision home =
        placeCondition(plan, platformExecutors());
    ASSERT_TRUE(home.placed());
    EXPECT_EQ(home.wireTarget,
              home.kind == ExecutorKind::ApFallback
                  ? "ap:local"
                  : "hub:" + home.executorName);

    // And the AP alone takes anything, at the duty-cycling price.
    const PlacementDecision ap_home =
        placeCondition(plan, {apFallbackExecutor()});
    ASSERT_TRUE(ap_home.placed());
    EXPECT_EQ(ap_home.kind, ExecutorKind::ApFallback);
    EXPECT_EQ(ap_home.wireTarget, "ap:local");
    EXPECT_DOUBLE_EQ(ap_home.marginalPowerMw,
                     apFallbackExecutor().activePowerMw);
}

// ---------------------------------------------------------------------
// Determinism.

TEST(Placer, RepeatedRunsAreBitIdentical)
{
    Placer placer(platformExecutors());
    for (const auto &[name, plan] : shippedPlans())
        placer.addCondition(plan);

    const PlacementResult first = placer.place();
    for (int i = 0; i < 5; ++i)
        expectSameResult(first, placer.place());
}

TEST(Placer, ConcurrentCallersAgreeWithSerial)
{
    // place() is const and pure; hammer one placer from many threads
    // and require every result bit-identical to the serial answer.
    Placer placer(platformExecutors());
    for (const auto &[name, plan] : shippedPlans())
        placer.addCondition(plan);
    const PlacementResult serial = placer.place();

    for (std::size_t threads : {2u, 8u}) {
        std::vector<PlacementResult> results(threads);
        std::vector<std::thread> workers;
        for (std::size_t t = 0; t < threads; ++t)
            workers.emplace_back(
                [&placer, &results, t] { results[t] = placer.place(); });
        for (auto &w : workers)
            w.join();
        for (const auto &r : results)
            expectSameResult(serial, r);
    }
}

TEST(Placer, SeedChangesOnlyBreakTies)
{
    // Different seeds may pick different equal-cost homes but must
    // agree on total power and the placed/unplaced split.
    Placer a(platformExecutors(), PlacerConfig{32, 8.0, 64.0, 1});
    Placer b(platformExecutors(), PlacerConfig{32, 8.0, 64.0, 2});
    for (const auto &[name, plan] : shippedPlans()) {
        a.addCondition(plan);
        b.addCondition(plan);
    }
    const PlacementResult ra = a.place();
    const PlacementResult rb = b.place();
    EXPECT_DOUBLE_EQ(ra.totalPowerMw, rb.totalPowerMw);
    EXPECT_EQ(ra.unplaced, rb.unplaced);
}

// ---------------------------------------------------------------------
// Ledger soundness under contention (fuzzed).

/** Random shallow accel pipeline as IL text. */
std::string
randomIl(Rng &rng)
{
    std::ostringstream il;
    const char *chans[] = {"ACC_X", "ACC_Y", "ACC_Z"};
    int id = 1;
    std::string src = chans[rng.uniformInt(0, 2)];
    const long depth = rng.uniformInt(1, 3);
    for (long d = 0; d < depth; ++d) {
        switch (rng.uniformInt(0, 2)) {
          case 0:
            il << src << " -> movingAvg(id=" << id << ", params={"
               << rng.uniformInt(2, 16) << "});\n";
            break;
          case 1:
            il << src << " -> expMovingAvg(id=" << id << ", params={"
               << rng.uniform(0.05, 1.0) << "});\n";
            break;
          default: {
            const long n = 1L << rng.uniformInt(2, 4);
            il << src << " -> window(id=" << id << ", params={" << n
               << ", 1, " << n << "});\n";
            const int window_id = id++;
            il << window_id << " -> rms(id=" << id << ");\n";
            break;
          }
        }
        src = std::to_string(id++);
    }
    il << src << " -> minThreshold(id=" << id << ", params={"
       << rng.uniform(0.5, 4.0) << "});\n";
    il << id << " -> OUT;\n";
    return il.str();
}

TEST(Placer, FuzzedWorkloadsEndWithSoundLedgers)
{
    Rng rng(20260807);
    const auto channels = core::accelerometerChannels();

    for (int round = 0; round < 40; ++round) {
        const long conditions = rng.uniformInt(2, 12);
        std::vector<il::ExecutionPlan> plans;
        double total_cycles = 0.0;
        std::size_t total_ram = 0;
        for (long c = 0; c < conditions; ++c) {
            plans.push_back(
                il::lower(il::parse(randomIl(rng)), channels));
            total_cycles += plans.back().cost().cyclesPerSecond;
            total_ram += plans.back().cost().ramBytes;
        }

        // Two mini-MCUs sized so the workload does not fit in one:
        // negotiation has to spread the tenants.
        ExecutorModel mini;
        mini.kind = ExecutorKind::Mcu;
        mini.name = "mini";
        mini.activePowerMw = rng.uniform(1.0, 10.0);
        mini.cyclesPerSecond =
            std::max(1.0, total_cycles * rng.uniform(0.55, 0.9));
        mini.ramBytes = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   static_cast<double>(total_ram) *
                   rng.uniform(0.55, 0.9)));
        ExecutorModel mini2 = mini;
        mini2.name = "mini2";
        mini2.activePowerMw = rng.uniform(1.0, 10.0);
        std::vector<ExecutorModel> executors = {mini, mini2};
        if (rng.chance(0.5))
            executors.push_back(apFallbackExecutor());

        Placer placer(executors,
                      PlacerConfig{32, 8.0, 64.0,
                                   static_cast<std::uint64_t>(round)});
        for (const auto &plan : plans)
            placer.addCondition(plan);
        const PlacementResult result = placer.place();

        for (std::size_t e = 0; e < executors.size(); ++e)
            EXPECT_TRUE(ledgerSound(executors[e], result.ledgers[e]))
                << "round " << round << " executor " << e;
        std::size_t placed = 0;
        for (const auto &d : result.decisions)
            placed += d.placed() ? 1 : 0;
        EXPECT_EQ(placed + result.unplaced, plans.size());
        if (executors.size() == 3) {
            // The AP fallback takes everything the minis cannot.
            EXPECT_EQ(result.unplaced, 0u) << "round " << round;
        }
    }
}

// ---------------------------------------------------------------------
// Against the greedy baseline.

TEST(Placer, AdmitsEverythingGreedyAdmitsOnShippedCorpus)
{
    // The whole shipped-app corpus on the hub-only space (no AP):
    // every condition the frozen ladder admits, the negotiated placer
    // admits too — and never at higher total power.
    std::vector<ExecutorModel> hubs = {mcuExecutor(msp430()),
                                       mcuExecutor(lm4f120()),
                                       fpgaExecutor(ice40Hub())};
    Placer placer(hubs);
    for (const auto &[name, plan] : shippedPlans())
        placer.addCondition(plan);

    const PlacementResult greedy = placer.placeGreedy();
    const PlacementResult negotiated = placer.place();
    for (std::size_t c = 0; c < greedy.decisions.size(); ++c)
        if (greedy.decisions[c].placed()) {
            EXPECT_TRUE(negotiated.decisions[c].placed())
                << "condition " << c;
        }
    EXPECT_LE(negotiated.unplaced, greedy.unplaced);
    if (greedy.unplaced == 0) {
        EXPECT_LE(negotiated.totalPowerMw, greedy.totalPowerMw);
    }
}

TEST(Placer, RemoveAtBacksOutExactlyOneCondition)
{
    const auto plans = shippedPlans();
    Placer placer(platformExecutors());
    for (const auto &[name, plan] : plans)
        placer.addCondition(plan);
    placer.removeAt(1);
    ASSERT_EQ(placer.conditionCount(), plans.size() - 1);

    Placer reference(platformExecutors());
    for (std::size_t i = 0; i < plans.size(); ++i)
        if (i != 1)
            reference.addCondition(plans[i].second);
    // Slot indices shifted, so compare via a fresh placement of the
    // same condition multiset.
    const PlacementResult a = placer.place();
    const PlacementResult b = reference.place();
    EXPECT_EQ(a.totalPowerMw, b.totalPowerMw);
    EXPECT_EQ(a.unplaced, b.unplaced);
}

// ---------------------------------------------------------------------
// Golden corpus: renderPlacementReport for every tests/data/*.il file
// is pinned under tests/data/placements/<stem>.place (the exact text
// `swlint --place` prints per unit). Error files pin the error text.
// Regenerate with SW_UPDATE_GOLDENS=1.

std::filesystem::path
dataDir()
{
    return std::filesystem::path(SW_TEST_DATA_DIR);
}

std::string
placeTextFor(const std::string &source)
{
    try {
        return renderPlacementReport(
            il::lower(il::parse(source), core::allChannels()),
            platformExecutors());
    } catch (const SidewinderError &error) {
        return std::string("error: ") + error.what() + "\n";
    }
}

TEST(PlacementGoldens, CorpusMatchesPinnedReports)
{
    const bool update = std::getenv("SW_UPDATE_GOLDENS") != nullptr;
    const auto placements_dir = dataDir() / "placements";
    if (update)
        std::filesystem::create_directories(placements_dir);

    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dataDir()))
        if (entry.path().extension() == ".il")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    ASSERT_GE(files.size(), 20u) << "corpus went missing";

    for (const auto &path : files) {
        std::ifstream in(path);
        ASSERT_TRUE(in) << path;
        std::ostringstream text;
        text << in.rdbuf();
        const std::string actual = placeTextFor(text.str());

        const auto golden_path =
            placements_dir / (path.stem().string() + ".place");
        if (update) {
            std::ofstream out(golden_path);
            ASSERT_TRUE(out) << golden_path;
            out << actual;
            continue;
        }

        std::ifstream golden(golden_path);
        ASSERT_TRUE(golden)
            << golden_path
            << " missing — regenerate with SW_UPDATE_GOLDENS=1";
        std::ostringstream expected;
        expected << golden.rdbuf();
        EXPECT_EQ(actual, expected.str()) << path.filename();
    }
}

} // namespace
} // namespace sidewinder::hub
