/**
 * @file
 * Differential properties of the plan-executing hub::Engine against
 * the frozen reference::LegacyEngine (the pre-ExecutionPlan AST
 * interpreter): bit-identical wake events, values, and raw buffers
 * over every predefined application and over fuzzed IL, in both
 * sharing modes. Also pins the plan/analyzer node-count agreement on
 * fuzzed programs and the remove/reinstall RAM accounting of shared
 * nodes.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "apps/predefined.h"
#include "core/sensors.h"
#include "hub/engine.h"
#include "il/analyze.h"
#include "il/lower.h"
#include "il/optimize.h"
#include "il/parser.h"
#include "il/plan.h"
#include "reference/legacy_engine.h"
#include "support/rng.h"

namespace sidewinder {
namespace {

const std::vector<il::ChannelInfo> kChannels = {{"ACC_X", 50.0},
                                                {"ACC_Y", 50.0},
                                                {"ACC_Z", 50.0},
                                                {"AUDIO", 4000.0},
                                                {"BARO", 20.0}};

/**
 * Drive both engines with an identical deterministic sample stream
 * and require bit-identical wake events (id, timestamp, value) and
 * raw snapshots for every installed condition.
 */
void
expectBitIdentical(hub::Engine &engine,
                   reference::LegacyEngine &legacy,
                   const std::vector<il::ChannelInfo> &channels,
                   const std::vector<int> &condition_ids,
                   std::uint64_t seed, int waves)
{
    Rng rng(seed);
    std::vector<double> values(channels.size());
    std::size_t wake_count = 0;

    for (int i = 0; i < waves; ++i) {
        const double t = i * 0.01;
        for (std::size_t c = 0; c < channels.size(); ++c)
            values[c] = std::sin(0.07 * i * (static_cast<double>(c) +
                                             1.0)) +
                        rng.gaussian(0.0, 0.3);
        engine.pushSamples(values, t);
        legacy.pushSamples(values, t);

        const auto got = engine.drainWakeEvents();
        const auto want = legacy.drainWakeEvents();
        ASSERT_EQ(got.size(), want.size()) << "wave " << i;
        for (std::size_t e = 0; e < got.size(); ++e) {
            EXPECT_EQ(got[e].conditionId, want[e].conditionId);
            EXPECT_EQ(got[e].timestamp, want[e].timestamp);
            EXPECT_EQ(got[e].value, want[e].value) << "wave " << i;
        }
        wake_count += got.size();
    }

    for (int id : condition_ids)
        EXPECT_EQ(engine.rawSnapshot(id), legacy.rawSnapshot(id))
            << "condition " << id;
    EXPECT_EQ(engine.nodeCount(), legacy.nodeCount());
    (void)wake_count;
}

TEST(PlanProperty, PredefinedAppsAreBitIdenticalToLegacy)
{
    for (bool share : {true, false}) {
        for (const auto &app : apps::allApps()) {
            const il::Program p = app->wakeCondition().compile();
            hub::Engine engine(app->channels(), share);
            reference::LegacyEngine legacy(app->channels(), share);
            engine.addCondition(1, p);
            legacy.addCondition(1, p);
            expectBitIdentical(engine, legacy, app->channels(), {1},
                               7, 4000);
        }
    }
}

TEST(PlanProperty, ExtendedAppsAreBitIdenticalToLegacy)
{
    const std::unique_ptr<apps::Application> extended[] = {
        apps::makeGestureApp(), apps::makeFloorsApp()};
    for (bool share : {true, false}) {
        for (const auto &app : extended) {
            const il::Program p = app->wakeCondition().compile();
            hub::Engine engine(app->channels(), share);
            reference::LegacyEngine legacy(app->channels(), share);
            engine.addCondition(1, p);
            legacy.addCondition(1, p);
            expectBitIdentical(engine, legacy, app->channels(), {1},
                               11, 4000);
        }
    }
}

TEST(PlanProperty, ConcurrentAudioConditionsShareAndStayIdentical)
{
    // Multi-condition install on one engine: the cross-condition
    // sharing path (plan keys vs the legacy index keys) must agree.
    const auto channels = core::audioChannels();
    std::vector<il::Program> programs;
    for (const auto &app : apps::allApps())
        if (app->channels().size() == channels.size() &&
            app->channels().front().name == channels.front().name)
            programs.push_back(app->wakeCondition().compile());
    ASSERT_GE(programs.size(), 2u);

    for (bool share : {true, false}) {
        hub::Engine engine(channels, share);
        reference::LegacyEngine legacy(channels, share);
        std::vector<int> ids;
        for (std::size_t i = 0; i < programs.size(); ++i) {
            const int id = static_cast<int>(i) + 1;
            engine.addCondition(id, programs[i]);
            legacy.addCondition(id, programs[i]);
            ids.push_back(id);
        }
        expectBitIdentical(engine, legacy, channels, ids, 13, 6000);
    }
}

// ---------------------------------------------------------------------
// Block execution: pushBlock(K) against the per-sample wave loop on
// the same engine type. The contract is bit-identity — same wake
// events in the same order, same raw history — for every block size,
// including K=1 and a ragged final block.

/**
 * Drive @p ref one sample at a time and @p block_engine in blocks of
 * @p block_size waves (channel-major lanes), requiring bit-identical
 * wake-event streams at every block boundary and identical raw
 * snapshots afterward.
 */
void
expectBlockIdentical(hub::Engine &block_engine, hub::Engine &ref,
                     const std::vector<il::ChannelInfo> &channels,
                     const std::vector<int> &condition_ids,
                     std::uint64_t seed, int waves,
                     std::size_t block_size)
{
    Rng rng(seed);
    const std::size_t nch = channels.size();
    std::vector<double> values(nch);
    std::vector<std::vector<double>> lanes(nch);
    std::vector<double> times;
    std::vector<double> packed;
    std::vector<hub::WakeEvent> want;

    const auto flush = [&]() {
        const std::size_t count = times.size();
        if (count == 0)
            return;
        packed.resize(nch * count);
        for (std::size_t c = 0; c < nch; ++c) {
            std::copy(lanes[c].begin(), lanes[c].end(),
                      packed.begin() +
                          static_cast<std::ptrdiff_t>(c * count));
            lanes[c].clear();
        }
        block_engine.pushBlock(packed.data(), count, times.data());
        times.clear();

        const auto got = block_engine.drainWakeEvents();
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t e = 0; e < got.size(); ++e) {
            EXPECT_EQ(got[e].conditionId, want[e].conditionId);
            EXPECT_EQ(got[e].timestamp, want[e].timestamp);
            EXPECT_EQ(got[e].value, want[e].value);
        }
        want.clear();
    };

    for (int i = 0; i < waves; ++i) {
        const double t = i * 0.01;
        for (std::size_t c = 0; c < nch; ++c) {
            values[c] = std::sin(0.07 * i * (static_cast<double>(c) +
                                             1.0)) +
                        rng.gaussian(0.0, 0.3);
            lanes[c].push_back(values[c]);
        }
        times.push_back(t);
        ref.pushSamples(values, t);
        for (const auto &event : ref.drainWakeEvents())
            want.push_back(event);
        if (times.size() == block_size)
            flush();
        if (::testing::Test::HasFatalFailure())
            return;
    }
    flush(); // ragged tail when waves % block_size != 0

    for (int id : condition_ids)
        EXPECT_EQ(block_engine.rawSnapshot(id), ref.rawSnapshot(id))
            << "condition " << id;
    EXPECT_EQ(block_engine.nodeCount(), ref.nodeCount());
}

TEST(PlanProperty, BlockExecutionBitIdenticalOnAppsAcrossBlockSizes)
{
    for (bool share : {true, false}) {
        for (const auto &app : apps::allApps()) {
            const il::Program p = app->wakeCondition().compile();
            for (std::size_t k : {std::size_t{1}, std::size_t{4},
                                  std::size_t{16}, std::size_t{64}}) {
                hub::Engine block_engine(app->channels(), share);
                hub::Engine ref(app->channels(), share);
                block_engine.addCondition(1, p);
                ref.addCondition(1, p);
                expectBlockIdentical(block_engine, ref,
                                     app->channels(), {1}, 7, 1500,
                                     k);
                ASSERT_FALSE(::testing::Test::HasFatalFailure())
                    << app->name() << " K=" << k
                    << " share=" << share;
            }
        }
    }
}

TEST(PlanProperty, BlockExecutionBitIdenticalOnConcurrentConditions)
{
    // Multi-condition audio engine: shared nodes, partial-firing
    // thresholds, and the wake scan visiting several out-nodes.
    const auto channels = core::audioChannels();
    std::vector<il::Program> programs;
    for (const auto &app : apps::allApps())
        if (app->channels().size() == channels.size() &&
            app->channels().front().name == channels.front().name)
            programs.push_back(app->wakeCondition().compile());
    ASSERT_GE(programs.size(), 2u);

    hub::Engine block_engine(channels, true);
    hub::Engine ref(channels, true);
    std::vector<int> ids;
    for (std::size_t i = 0; i < programs.size(); ++i) {
        const int id = static_cast<int>(i) + 1;
        block_engine.addCondition(id, programs[i]);
        ref.addCondition(id, programs[i]);
        ids.push_back(id);
    }
    expectBlockIdentical(block_engine, ref, channels, ids, 13, 6000,
                         64);
}

// ---------------------------------------------------------------------
// Fuzzed IL: random threshold pipelines over the prototype channels,
// with a duplicated branch half of the time to exercise dedupe.

/** One randomly parameterized chain: channel -> smooth -> threshold. */
struct ChainSpec
{
    int channel = 0;
    bool window = false;
    int avgLen = 5;
    bool minThr = true;
    double thrValue = 0.0;
};

ChainSpec
randomChain(Rng &rng)
{
    ChainSpec spec;
    spec.channel = static_cast<int>(rng.uniformInt(0, 4));
    spec.window = rng.uniform(0.0, 1.0) < 0.3;
    spec.avgLen = static_cast<int>(rng.uniformInt(2, 12));
    spec.minThr = rng.uniform(0.0, 1.0) < 0.5;
    spec.thrValue = rng.uniform(-0.8, 0.8);
    return spec;
}

int
emitChain(std::ostringstream &out, const ChainSpec &spec, int &next_id)
{
    static const char *const kNames[5] = {"ACC_X", "ACC_Y", "ACC_Z",
                                          "AUDIO", "BARO"};
    std::string input = kNames[spec.channel];
    if (spec.window) {
        const int w = next_id++;
        out << input << " -> window(id=" << w << ", params={32});\n";
        const int r = next_id++;
        out << w << " -> rms(id=" << r << ");\n";
        input = std::to_string(r);
    } else {
        const int m = next_id++;
        out << input << " -> movingAvg(id=" << m << ", params={"
            << spec.avgLen << "});\n";
        input = std::to_string(m);
    }
    const int t = next_id++;
    out << input << " -> "
        << (spec.minThr ? "minThreshold" : "maxThreshold") << "(id=" << t
        << ", params={" << spec.thrValue << "});\n";
    return t;
}

std::string
fuzzProgram(Rng &rng)
{
    std::ostringstream out;
    int next_id = 1;
    std::vector<int> heads;

    const int chains = static_cast<int>(rng.uniformInt(1, 3));
    for (int c = 0; c < chains; ++c) {
        const ChainSpec spec = randomChain(rng);
        heads.push_back(emitChain(out, spec, next_id));
        // Half the time, duplicate the chain verbatim: the lowered
        // plan must collapse it while the raw install must not.
        if (rng.uniform(0.0, 1.0) < 0.5)
            heads.push_back(emitChain(out, spec, next_id));
    }

    while (heads.size() > 1) {
        const int a = heads.back();
        heads.pop_back();
        const int b = heads.back();
        heads.pop_back();
        const int o = next_id++;
        out << a << "," << b << " -> "
            << (rng.uniform(0.0, 1.0) < 0.5 ? "or" : "and")
            << "(id=" << o << ");\n";
        heads.push_back(o);
    }

    int head = heads.front();
    if (rng.uniform(0.0, 1.0) < 0.4) {
        const int k = next_id++;
        out << head << " -> consecutive(id=" << k << ", params={"
            << rng.uniformInt(1, 4) << "});\n";
        head = k;
    }
    out << head << " -> OUT;\n";
    return out.str();
}

TEST(PlanProperty, FuzzedProgramsAreBitIdenticalToLegacy)
{
    Rng gen(42);
    for (int trial = 0; trial < 25; ++trial) {
        const std::string text = fuzzProgram(gen);
        il::Program program;
        ASSERT_NO_THROW(program = il::parse(text)) << text;

        for (bool share : {true, false}) {
            hub::Engine engine(kChannels, share);
            reference::LegacyEngine legacy(kChannels, share);
            engine.addCondition(1, program);
            legacy.addCondition(1, program);
            expectBitIdentical(engine, legacy, kChannels, {1},
                               100 + static_cast<std::uint64_t>(trial),
                               1500);
        }
    }
}

TEST(PlanProperty, FuzzedProgramsBlockBitIdenticalToPerSample)
{
    // The fuzzed programs mix AllInputs, AnyInput (or), and
    // ObserveBlocks (consecutive) nodes with thresholds that emit
    // Blocked waves — the partial-firing paths of the block loop.
    Rng gen(77);
    for (int trial = 0; trial < 12; ++trial) {
        const std::string text = fuzzProgram(gen);
        il::Program program;
        ASSERT_NO_THROW(program = il::parse(text)) << text;

        for (std::size_t k : {std::size_t{4}, std::size_t{64}}) {
            hub::Engine block_engine(kChannels, true);
            hub::Engine ref(kChannels, true);
            block_engine.addCondition(1, program);
            ref.addCondition(1, program);
            expectBlockIdentical(
                block_engine, ref, kChannels, {1},
                200 + static_cast<std::uint64_t>(trial), 1500, k);
            ASSERT_FALSE(::testing::Test::HasFatalFailure())
                << text << "K=" << k;
        }
    }
}

TEST(PlanProperty, FuzzedPlanNodeCountMatchesAnalyzer)
{
    Rng gen(43);
    for (int trial = 0; trial < 25; ++trial) {
        const il::Program program = il::parse(fuzzProgram(gen));
        const il::AnalysisResult analysis =
            il::analyze(program, kChannels);
        ASSERT_TRUE(analysis.ok());
        EXPECT_EQ(
            il::lower(il::optimize(program), kChannels).nodeCount(),
            analysis.cost.planNodeCount);
    }
}

// ---------------------------------------------------------------------
// Remove/reinstall accounting: freeing a condition must release
// exactly the unshared nodes, measured through the plan RAM numbers.

TEST(PlanProperty, RemoveReinstallFreesExactlyUnsharedNodes)
{
    const il::Program a =
        il::parse("ACC_X -> movingAvg(id=1, params={5});\n"
                  "1 -> minThreshold(id=2, params={2});\n"
                  "2 -> OUT;\n");
    const il::Program b =
        il::parse("ACC_X -> movingAvg(id=1, params={5});\n"
                  "1 -> maxThreshold(id=2, params={-2});\n"
                  "2 -> OUT;\n");

    hub::Engine engine(kChannels, true);
    const il::ExecutionPlan plan_a =
        il::lower(a, kChannels, il::LowerOptions{true});
    const il::ExecutionPlan plan_b =
        il::lower(b, kChannels, il::LowerOptions{true});

    engine.addCondition(1, plan_a);
    const std::size_t ram_a = engine.estimatedRamBytes();
    const std::size_t nodes_a = engine.nodeCount();
    EXPECT_EQ(nodes_a, 2u);
    EXPECT_EQ(ram_a, plan_a.cost().ramBytes);

    // B shares the movingAvg prefix, so its marginal footprint is
    // exactly its threshold node.
    const il::ProgramCost marginal_b = engine.marginalCost(plan_b);
    EXPECT_LT(marginal_b.ramBytes, plan_b.cost().ramBytes);

    engine.addCondition(2, plan_b);
    const std::size_t ram_ab = engine.estimatedRamBytes();
    EXPECT_EQ(ram_ab, ram_a + marginal_b.ramBytes);
    EXPECT_EQ(engine.nodeCount(), 3u);

    // Removing B frees exactly the unshared threshold node.
    engine.removeCondition(2);
    EXPECT_EQ(engine.estimatedRamBytes(), ram_a);
    EXPECT_EQ(engine.nodeCount(), nodes_a);

    // Reinstalling lands on the same accounting.
    engine.addCondition(2, plan_b);
    EXPECT_EQ(engine.estimatedRamBytes(), ram_ab);
    EXPECT_EQ(engine.nodeCount(), 3u);

    // Dropping A leaves B owning the shared prefix: B's standalone
    // footprint, not B's marginal one.
    engine.removeCondition(1);
    EXPECT_EQ(engine.estimatedRamBytes(), plan_b.cost().ramBytes);
    EXPECT_EQ(engine.nodeCount(), 2u);

    // The survivor still wakes.
    Rng rng(5);
    std::vector<double> values(kChannels.size());
    std::size_t wakes = 0;
    for (int i = 0; i < 500; ++i) {
        for (std::size_t c = 0; c < values.size(); ++c)
            values[c] = -3.0 + rng.gaussian(0.0, 0.1);
        engine.pushSamples(values, i * 0.02);
        wakes += engine.drainWakeEvents().size();
    }
    EXPECT_GT(wakes, 0u);
}

} // namespace
} // namespace sidewinder
