/**
 * @file
 * Tests for OTA-style live reconfiguration (docs/fault-model.md,
 * "Live reconfiguration"): versioned delta plan updates staged in the
 * engine's shadow slot, the atomic A/B swap with shared-subgraph
 * state carry-over, and the rollback paths — analyzer rejection,
 * stale hash references, stalled transfers, and superseded epochs.
 * Also pins the `swlint --diff-plan` golden corpus
 * (tests/data/deltas/).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "core/algorithm.h"
#include "core/pipeline.h"
#include "core/sensor_manager.h"
#include "core/sensors.h"
#include "hub/mcu.h"
#include "hub/reconfig.h"
#include "hub/runtime.h"
#include "il/delta.h"
#include "il/lower.h"
#include "il/parser.h"
#include "support/error.h"
#include "transport/link.h"
#include "transport/messages.h"

namespace sidewinder::hub {
namespace {

constexpr double kSampleRate = 50.0;
constexpr double kSamplePeriod = 1.0 / kSampleRate;

/** The Figure 2a motion pipeline with a tunable threshold. */
core::ProcessingPipeline
motionPipeline(double threshold)
{
    core::ProcessingPipeline pipeline;
    std::vector<core::ProcessingBranch> branches;
    branches.emplace_back(core::channel::accelerometerX);
    branches.emplace_back(core::channel::accelerometerY);
    branches.emplace_back(core::channel::accelerometerZ);
    for (auto &branch : branches)
        branch.add(core::MovingAverage(10));
    pipeline.add(branches);
    pipeline.add(core::VectorMagnitude());
    pipeline.add(core::MinThreshold(threshold));
    return pipeline;
}

/** A second condition sharing the smoothing prefix. */
core::ProcessingPipeline
rangePipeline()
{
    core::ProcessingPipeline pipeline;
    std::vector<core::ProcessingBranch> branches;
    branches.emplace_back(core::channel::accelerometerX);
    branches.emplace_back(core::channel::accelerometerY);
    branches.emplace_back(core::channel::accelerometerZ);
    for (auto &branch : branches)
        branch.add(core::MovingAverage(10));
    pipeline.add(branches);
    pipeline.add(core::VectorMagnitude());
    pipeline.add(core::MaxThreshold(40));
    return pipeline;
}

/** Records wake-up callbacks for assertions. */
class Recorder : public core::SensorEventListener
{
  public:
    void
    onSensorEvent(const core::SensorData &data) override
    {
        timestamps.push_back(data.timestamp);
        values.push_back(data.triggerValue);
    }
    std::vector<double> timestamps;
    std::vector<double> values;
};

/** Deterministic synthetic accel wave: quiet, burst, quiet. */
std::vector<double>
sampleAt(std::size_t i)
{
    const double t = static_cast<double>(i) * kSamplePeriod;
    const double burst = (t >= 4.0 && t < 6.0) ? 30.0 : 0.0;
    return {5.0 + burst, 5.0 + 0.5 * burst, 5.0 + 0.25 * burst};
}

/** One exchange step: hub polls + ingests a sample, phone polls. */
void
step(HubRuntime &hub, core::SidewinderSensorManager &manager,
     std::size_t i)
{
    const double t = static_cast<double>(i) * kSamplePeriod;
    hub.pollLink(t);
    hub.pushSamples(sampleAt(i), t);
    manager.poll(t);
}

il::ExecutionPlan
lowerIl(const std::string &text)
{
    return il::lower(il::parse(text), core::accelerometerChannels());
}

// ---------------------------------------------------------------------
// The fault-free A/B swap.

TEST(HubReconfig, FaultFreeSwapCommitsAndCountsOneBlindSample)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());
    core::SidewinderSensorManager manager(
        link, core::accelerometerChannels());

    Recorder listener;
    const int id = manager.push(motionPipeline(15), &listener, 0.0);
    for (std::size_t i = 0; i < 100; ++i)
        step(hub, manager, i);
    ASSERT_EQ(manager.state(id), core::ConditionState::Active);
    ASSERT_EQ(hub.configEpoch(), 0u);

    // Retune the threshold mid-run. The update travels as a delta
    // (only the threshold node and OUT ship) and commits atomically.
    const std::uint32_t epoch = manager.beginUpdate(2.0);
    manager.updateCondition(id, motionPipeline(12), 2.0);
    manager.commitUpdate(2.0);
    for (std::size_t i = 100; i < 200; ++i)
        step(hub, manager, i);

    EXPECT_FALSE(manager.updateInProgress());
    EXPECT_FALSE(hub.updateInProgress());
    EXPECT_EQ(manager.configEpoch(), epoch);
    EXPECT_EQ(hub.configEpoch(), epoch);
    EXPECT_EQ(hub.updatesCommitted(), 1u);
    EXPECT_EQ(hub.updatesRolledBack(), 0u);
    EXPECT_EQ(manager.reconfigStats().updatesCommitted, 1u);

    // Zero dropped samples: the swap lands between two waves, so the
    // measured blind window is exactly one sample period.
    EXPECT_NEAR(hub.lastBlindWindowSeconds(), kSamplePeriod, 1e-9);

    // The delta genuinely beat a full push on the wire.
    const auto &stats = manager.reconfigStats();
    EXPECT_GT(stats.nodesReused, 0u);
    EXPECT_LT(stats.deltaWireBytes, stats.fullPushWireBytes);
}

TEST(HubReconfig, UnchangedSubgraphWakesBitIdenticalAcrossSwap)
{
    // Two runs over the same samples: one never reconfigures, one
    // retunes the *other* condition's threshold mid-run. The
    // untouched condition shares its smoothing prefix with the
    // updated one, so any state reset during the swap would perturb
    // its wake events. They must match bit for bit.
    auto run = [](bool reconfigure) {
        transport::LinkPair link(115200.0);
        HubRuntime hub(link, core::accelerometerChannels(), msp430());
        // The untouched condition fires on every wave; without
        // coalescing the raw-data wake frames saturate the 115200-baud
        // downlink and the commit ack never drains to the phone.
        hub.setWakeCoalescing(0.5);
        core::SidewinderSensorManager manager(
            link, core::accelerometerChannels());

        Recorder untouched;
        Recorder retuned;
        const int keep = manager.push(rangePipeline(), &untouched, 0.0);
        const int tune = manager.push(motionPipeline(15), &retuned, 0.0);
        (void)keep;
        for (std::size_t i = 0; i < 150; ++i)
            step(hub, manager, i);
        if (reconfigure) {
            manager.beginUpdate(3.0);
            manager.updateCondition(tune, motionPipeline(20), 3.0);
            manager.commitUpdate(3.0);
        }
        for (std::size_t i = 150; i < 400; ++i)
            step(hub, manager, i);
        if (reconfigure) {
            EXPECT_EQ(manager.reconfigStats().updatesCommitted, 1u);
            EXPECT_EQ(hub.updatesCommitted(), 1u);
        }
        return std::make_pair(untouched.timestamps, untouched.values);
    };

    const auto baseline = run(false);
    const auto swapped = run(true);
    EXPECT_EQ(baseline.first, swapped.first);
    EXPECT_EQ(baseline.second, swapped.second);
}

TEST(HubReconfig, ThresholdChangeTakesEffectAfterSwap)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());
    core::SidewinderSensorManager manager(
        link, core::accelerometerChannels());

    // Threshold 100 never fires on this trace; 10 fires during the
    // burst. Updating 100 -> 10 before the burst means every wake
    // observed is proof the B plan went live.
    Recorder listener;
    const int id = manager.push(motionPipeline(100), &listener, 0.0);
    for (std::size_t i = 0; i < 100; ++i)
        step(hub, manager, i);
    ASSERT_TRUE(listener.timestamps.empty());

    manager.beginUpdate(2.0);
    manager.updateCondition(id, motionPipeline(10), 2.0);
    manager.commitUpdate(2.0);
    for (std::size_t i = 100; i < 400; ++i)
        step(hub, manager, i);

    EXPECT_EQ(manager.reconfigStats().updatesCommitted, 1u);
    EXPECT_FALSE(listener.timestamps.empty());
    // And every wake postdates the commit.
    EXPECT_GE(listener.timestamps.front(), 2.0);
}

// ---------------------------------------------------------------------
// Rollback paths. These drive the hub's wire protocol directly so the
// staged payloads can be made invalid in ways the manager's local
// validation would never let through.

const char *motionIl = "ACC_X -> movingAvg(id=1, params={10});\n"
                       "ACC_Y -> movingAvg(id=2, params={10});\n"
                       "ACC_Z -> movingAvg(id=3, params={10});\n"
                       "1,2,3 -> vectorMagnitude(id=4);\n"
                       "4 -> minThreshold(id=5, params={15});\n"
                       "5 -> OUT;\n";

std::vector<transport::Frame>
drainHub(transport::LinkPair &link, double now)
{
    transport::FrameDecoder decoder;
    decoder.feed(link.hubToPhone().receive(now));
    std::vector<transport::Frame> frames;
    while (auto frame = decoder.poll())
        frames.push_back(*frame);
    return frames;
}

TEST(HubReconfig, StaleHashReferenceRollsBackAtCommit)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());

    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({1, motionIl}), 0.0);
    hub.pollLink(0.1);
    (void)drainHub(link, 0.2);

    // A delta referencing a shareKey hash that is not live (the
    // phone's view of the hub was stale) must fail staging and roll
    // back at commit.
    transport::DeltaPushMessage delta;
    delta.epoch = 1;
    delta.conditionId = 1;
    transport::DeltaNodeEntry bogus;
    bogus.reused = true;
    bogus.keyHash = 0xDEADBEEFDEADBEEFull;
    delta.entries.push_back(bogus);
    delta.outEntry = 0;
    link.phoneToHub().sendFrame(transport::encodeUpdateBegin({1}), 1.0);
    link.phoneToHub().sendFrame(transport::encodeDeltaPush(delta), 1.0);
    link.phoneToHub().sendFrame(transport::encodeUpdateCommit({1}),
                                1.0);
    hub.pollLink(1.5);

    const auto frames = drainHub(link, 2.0);
    ASSERT_EQ(frames.size(), 1u);
    const auto ack = transport::decodeUpdateAck(frames[0]);
    EXPECT_EQ(ack.status, transport::UpdateStatus::RolledBack);
    EXPECT_NE(ack.reason.find("stale shareKey hash"),
              std::string::npos);
    EXPECT_EQ(hub.configEpoch(), 0u);
    EXPECT_EQ(hub.updatesRolledBack(), 1u);
    EXPECT_EQ(hub.engine().stagedCount(), 0u);
    EXPECT_TRUE(hub.engine().hasCondition(1)); // A plan intact
}

TEST(HubReconfig, AnalyzerRejectionRollsBackAtCommit)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());

    // A structurally valid delta whose spliced program fails the
    // static analyzer (unknown algorithm) must never reach commit.
    transport::DeltaPushMessage delta;
    delta.epoch = 1;
    delta.conditionId = 1;
    delta.channelNames.push_back("ACC_X");
    transport::DeltaNodeEntry entry;
    entry.reused = false;
    entry.algorithm = "definitelyNotAnAlgorithm";
    entry.inputs.push_back(-1);
    delta.entries.push_back(entry);
    delta.outEntry = 0;
    link.phoneToHub().sendFrame(transport::encodeUpdateBegin({1}), 0.0);
    link.phoneToHub().sendFrame(transport::encodeDeltaPush(delta), 0.0);
    link.phoneToHub().sendFrame(transport::encodeUpdateCommit({1}),
                                0.0);
    hub.pollLink(0.5);

    const auto frames = drainHub(link, 1.0);
    ASSERT_EQ(frames.size(), 1u);
    const auto ack = transport::decodeUpdateAck(frames[0]);
    EXPECT_EQ(ack.status, transport::UpdateStatus::RolledBack);
    EXPECT_NE(ack.reason.find("static analysis"), std::string::npos);
    EXPECT_EQ(hub.configEpoch(), 0u);
    EXPECT_EQ(hub.engine().stagedCount(), 0u);
}

TEST(HubReconfig, StalledTransferRollsBackAndFreesShadowSlot)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());
    hub.setUpdateStallTimeout(2.0);

    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({1, motionIl}), 0.0);
    hub.pollLink(0.1);
    (void)drainHub(link, 0.2);

    // A valid begin + delta, then silence: the phone died mid-update.
    const il::ExecutionPlan plan = lowerIl(motionIl);
    const auto delta = buildDeltaPush(
        plan, il::computeDelta(plan, {}), /*epoch=*/1,
        /*condition_id=*/1);
    link.phoneToHub().sendFrame(transport::encodeUpdateBegin({1}), 1.0);
    link.phoneToHub().sendFrame(transport::encodeDeltaPush(delta), 1.0);
    hub.pollLink(1.2);
    EXPECT_TRUE(hub.updateInProgress());
    EXPECT_EQ(hub.engine().stagedCount(), 1u);

    // Past the stall timeout the hub must reclaim the shadow slot.
    hub.pollLink(4.0);
    EXPECT_FALSE(hub.updateInProgress());
    EXPECT_EQ(hub.engine().stagedCount(), 0u);
    EXPECT_EQ(hub.updatesRolledBack(), 1u);
    EXPECT_EQ(hub.configEpoch(), 0u);
    EXPECT_TRUE(hub.engine().hasCondition(1));

    const auto frames = drainHub(link, 5.0);
    ASSERT_EQ(frames.size(), 1u);
    const auto ack = transport::decodeUpdateAck(frames[0]);
    EXPECT_EQ(ack.status, transport::UpdateStatus::RolledBack);
    EXPECT_NE(ack.reason.find("stalled"), std::string::npos);
}

TEST(HubReconfig, SupersededEpochsAreRefusedAndCounted)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());

    // Commit epoch 5 through the full protocol.
    const il::ExecutionPlan plan = lowerIl(motionIl);
    const auto delta =
        buildDeltaPush(plan, il::computeDelta(plan, {}), 5, 1);
    link.phoneToHub().sendFrame(transport::encodeUpdateBegin({5}), 0.0);
    link.phoneToHub().sendFrame(transport::encodeDeltaPush(delta), 0.0);
    link.phoneToHub().sendFrame(transport::encodeUpdateCommit({5}),
                                0.0);
    hub.pollLink(0.5);
    auto frames = drainHub(link, 1.0);
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_EQ(transport::decodeUpdateAck(frames[0]).status,
              transport::UpdateStatus::Committed);
    ASSERT_EQ(hub.configEpoch(), 5u);

    // A begin for an older epoch is answered Stale, not staged.
    link.phoneToHub().sendFrame(transport::encodeUpdateBegin({3}), 2.0);
    hub.pollLink(2.1);
    frames = drainHub(link, 3.0);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(transport::decodeUpdateAck(frames[0]).status,
              transport::UpdateStatus::Stale);
    EXPECT_EQ(hub.staleEpochMessages(), 1u);
    EXPECT_FALSE(hub.updateInProgress());

    // A duplicate commit of the live epoch re-acks Committed
    // (idempotent), with no second swap.
    link.phoneToHub().sendFrame(transport::encodeUpdateCommit({5}),
                                3.0);
    hub.pollLink(3.1);
    frames = drainHub(link, 4.0);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(transport::decodeUpdateAck(frames[0]).status,
              transport::UpdateStatus::Committed);
    EXPECT_EQ(hub.updatesCommitted(), 1u);
}

TEST(HubReconfig, AbortFromPhoneFreesShadowSlot)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());

    const il::ExecutionPlan plan = lowerIl(motionIl);
    const auto delta =
        buildDeltaPush(plan, il::computeDelta(plan, {}), 1, 1);
    link.phoneToHub().sendFrame(transport::encodeUpdateBegin({1}), 0.0);
    link.phoneToHub().sendFrame(transport::encodeDeltaPush(delta), 0.0);
    link.phoneToHub().sendFrame(transport::encodeUpdateAbort({1}), 0.0);
    hub.pollLink(0.5);

    EXPECT_FALSE(hub.updateInProgress());
    EXPECT_EQ(hub.engine().stagedCount(), 0u);
    EXPECT_EQ(hub.updatesRolledBack(), 1u);
    const auto frames = drainHub(link, 1.0);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(transport::decodeUpdateAck(frames[0]).status,
              transport::UpdateStatus::RolledBack);
}

// ---------------------------------------------------------------------
// Delta codec and splice mechanics.

TEST(HubReconfig, DeltaPushCodecRoundtrips)
{
    transport::DeltaPushMessage message;
    message.epoch = 7;
    message.conditionId = 3;
    message.channelNames = {"ACC_X", "ACC_Y"};
    transport::DeltaNodeEntry reused;
    reused.reused = true;
    reused.keyHash = 0x0123456789ABCDEFull;
    transport::DeltaNodeEntry shipped;
    shipped.algorithm = "minThreshold";
    shipped.params = {12.5};
    shipped.inputs = {0, -2};
    message.entries = {reused, shipped};
    message.outEntry = 1;

    const auto decoded =
        transport::decodeDeltaPush(transport::encodeDeltaPush(message));
    EXPECT_EQ(decoded.epoch, message.epoch);
    EXPECT_EQ(decoded.conditionId, message.conditionId);
    EXPECT_EQ(decoded.channelNames, message.channelNames);
    EXPECT_EQ(decoded.entries, message.entries);
    EXPECT_EQ(decoded.outEntry, message.outEntry);
}

TEST(HubReconfig, ForwardEntryReferenceIsRejected)
{
    transport::DeltaPushMessage message;
    message.epoch = 1;
    message.conditionId = 1;
    transport::DeltaNodeEntry entry;
    entry.algorithm = "minThreshold";
    entry.params = {1.0};
    entry.inputs = {0}; // refers to itself: a forward reference
    message.entries = {entry};
    message.outEntry = 0;
    EXPECT_THROW(
        transport::decodeDeltaPush(transport::encodeDeltaPush(message)),
        TransportError);
}

TEST(HubReconfig, SpliceReproducesCanonicalShareKeys)
{
    // Install the plan, then splice a delta that reuses everything:
    // re-lowering the spliced program must land on identical
    // shareKeys — the property that makes staging hash-cons onto the
    // live nodes (state and all).
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());
    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({1, motionIl}), 0.0);
    hub.pollLink(0.1);
    (void)drainHub(link, 0.2);

    const il::ExecutionPlan plan = lowerIl(motionIl);
    const std::unordered_set<std::string> live(plan.shareKeys.begin(),
                                               plan.shareKeys.end());
    const auto message =
        buildDeltaPush(plan, il::computeDelta(plan, live), 1, 1);
    const il::Program spliced =
        spliceDeltaProgram(message, hub.engine());
    const il::ExecutionPlan replan =
        il::lower(spliced, core::accelerometerChannels());
    // Node order may differ (the splice emits depth-first); the key
    // *set* is what hash-consing matches on.
    std::vector<std::string> expected = plan.shareKeys;
    std::vector<std::string> actual = replan.shareKeys;
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected);
}

// ---------------------------------------------------------------------
// Golden corpus for `swlint --diff-plan` (tests/data/deltas/): each
// <name>.old.il / <name>.new.il pair pins renderDiffPlan output in
// <name>.diff. Regenerate with SW_UPDATE_GOLDENS=1.

std::filesystem::path
deltasDir()
{
    return std::filesystem::path(SW_TEST_DATA_DIR) / "deltas";
}

std::string
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in) << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

TEST(DiffPlanGoldens, CorpusMatchesPinnedRenderings)
{
    const bool update = std::getenv("SW_UPDATE_GOLDENS") != nullptr;
    std::vector<std::filesystem::path> olds;
    for (const auto &entry :
         std::filesystem::directory_iterator(deltasDir())) {
        const auto name = entry.path().filename().string();
        if (name.size() > 7 &&
            name.compare(name.size() - 7, 7, ".old.il") == 0)
            olds.push_back(entry.path());
    }
    std::sort(olds.begin(), olds.end());
    ASSERT_GE(olds.size(), 3u) << "delta corpus went missing";

    for (const auto &old_path : olds) {
        auto new_path = old_path;
        new_path.replace_extension().replace_extension(); // strip .old.il
        auto diff_path = new_path;
        new_path += ".new.il";
        diff_path += ".diff";

        const std::string rendered = renderDiffPlan(
            lowerIl(readFile(old_path)), lowerIl(readFile(new_path)));
        if (update) {
            std::ofstream out(diff_path);
            out << rendered;
            continue;
        }
        EXPECT_EQ(rendered, readFile(diff_path)) << old_path;
    }
}

TEST(DiffPlanGoldens, ThresholdRetuneShipsOnlyTheThreshold)
{
    const auto dir = deltasDir();
    const il::ExecutionPlan old_plan =
        lowerIl(readFile(dir / "threshold_retune.old.il"));
    const il::ExecutionPlan new_plan =
        lowerIl(readFile(dir / "threshold_retune.new.il"));
    const std::unordered_set<std::string> live(
        old_plan.shareKeys.begin(), old_plan.shareKeys.end());
    const il::PlanDelta delta = il::computeDelta(new_plan, live);
    EXPECT_EQ(delta.shippedNodes.size(), 1u);
    EXPECT_EQ(new_plan.shareKeys[delta.shippedNodes[0]].rfind(
                  "minThreshold", 0),
              0u);
}

} // namespace
} // namespace sidewinder::hub
