/**
 * @file
 * Integration tests for the hub message loop over the simulated UART:
 * config push/ack/reject, removal, capability gating, wake-up frames.
 */

#include <gtest/gtest.h>

#include "hub/mcu.h"
#include "support/error.h"
#include "hub/runtime.h"
#include "transport/link.h"
#include "transport/messages.h"

namespace sidewinder::hub {
namespace {

std::vector<il::ChannelInfo>
accelChannels()
{
    return {{"ACC_X", 50.0}, {"ACC_Y", 50.0}, {"ACC_Z", 50.0}};
}

const char *motionIl = "ACC_X -> movingAvg(id=1, params={10});\n"
                       "ACC_Y -> movingAvg(id=2, params={10});\n"
                       "ACC_Z -> movingAvg(id=3, params={10});\n"
                       "1,2,3 -> vectorMagnitude(id=4);\n"
                       "4 -> minThreshold(id=5, params={15});\n"
                       "5 -> OUT;\n";

/** Drain and decode all frames on the hub-to-phone direction. */
std::vector<transport::Frame>
phoneSideFrames(transport::LinkPair &link, double now)
{
    transport::FrameDecoder decoder;
    decoder.feed(link.hubToPhone().receive(now));
    std::vector<transport::Frame> frames;
    while (auto frame = decoder.poll())
        frames.push_back(*frame);
    return frames;
}

TEST(HubRuntime, AcksValidConfig)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, accelChannels(), msp430());

    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({7, motionIl}), 0.0);
    hub.pollLink(1.0);

    const auto frames = phoneSideFrames(link, 2.0);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, transport::MessageType::ConfigAck);
    EXPECT_EQ(transport::decodeConfigAck(frames[0]).conditionId, 7);
    EXPECT_TRUE(hub.engine().hasCondition(7));
}

TEST(HubRuntime, RejectsMalformedIl)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, accelChannels(), msp430());

    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({3, "garbage -> !!"}), 0.0);
    hub.pollLink(1.0);

    const auto frames = phoneSideFrames(link, 2.0);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, transport::MessageType::ConfigReject);
    EXPECT_FALSE(hub.engine().hasCondition(3));
}

TEST(HubRuntime, RejectsBeyondMcuCapability)
{
    transport::LinkPair link(115200.0);
    // Audio hub on the weak MSP430: an FFT pipeline must be refused.
    HubRuntime hub(link, {{"AUDIO", 4000.0}}, msp430());

    const char *siren_prefix =
        "AUDIO -> window(id=1, params={256});\n"
        "1 -> fft(id=2);\n"
        "2 -> spectrum(id=3);\n"
        "3 -> peakToMeanRatio(id=4);\n"
        "4 -> minThreshold(id=5, params={4});\n"
        "5 -> OUT;\n";
    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({1, siren_prefix}), 0.0);
    hub.pollLink(1.0);

    const auto frames = phoneSideFrames(link, 2.0);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, transport::MessageType::ConfigReject);
    const auto reject = transport::decodeConfigReject(frames[0]);
    EXPECT_NE(reject.reason.find("MSP430"), std::string::npos);
}

TEST(HubRuntime, SameConfigAcceptedOnStrongerMcu)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, {{"AUDIO", 4000.0}}, lm4f120());

    const char *fft_condition =
        "AUDIO -> window(id=1, params={256});\n"
        "1 -> fft(id=2);\n"
        "2 -> spectrum(id=3);\n"
        "3 -> peakToMeanRatio(id=4);\n"
        "4 -> minThreshold(id=5, params={4});\n"
        "5 -> OUT;\n";
    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({1, fft_condition}), 0.0);
    hub.pollLink(1.0);

    const auto frames = phoneSideFrames(link, 2.0);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, transport::MessageType::ConfigAck);
}

TEST(HubRuntime, WakeUpFrameCarriesRawData)
{
    transport::LinkPair link(1e6);
    HubRuntime hub(link, accelChannels(), msp430());

    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({5, motionIl}), 0.0);
    hub.pollLink(1.0);
    (void)phoneSideFrames(link, 2.0); // consume the ack

    for (int i = 0; i < 10; ++i)
        hub.pushSamples({20.0, 20.0, 20.0}, 2.0 + i * 0.02);

    const auto frames = phoneSideFrames(link, 10.0);
    ASSERT_FALSE(frames.empty());
    EXPECT_EQ(frames[0].type, transport::MessageType::WakeUp);
    const auto wake = transport::decodeWakeUp(frames[0]);
    EXPECT_EQ(wake.conditionId, 5);
    EXPECT_GE(wake.triggerValue, 15.0);
    EXPECT_FALSE(wake.rawData.empty());
    EXPECT_DOUBLE_EQ(wake.rawData.back(), 20.0);
}

TEST(HubRuntime, RemoveStopsWakeUps)
{
    transport::LinkPair link(1e6);
    HubRuntime hub(link, accelChannels(), msp430());

    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({5, motionIl}), 0.0);
    hub.pollLink(1.0);
    link.phoneToHub().sendFrame(transport::encodeConfigRemove({5}),
                                1.0);
    hub.pollLink(2.0);
    (void)phoneSideFrames(link, 3.0); // ack + ack

    for (int i = 0; i < 10; ++i)
        hub.pushSamples({20.0, 20.0, 20.0}, 3.0 + i * 0.02);
    EXPECT_TRUE(phoneSideFrames(link, 10.0).empty());
}

TEST(HubRuntime, RemoveUnknownConditionRejects)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, accelChannels(), msp430());
    link.phoneToHub().sendFrame(transport::encodeConfigRemove({99}),
                                0.0);
    hub.pollLink(1.0);
    const auto frames = phoneSideFrames(link, 2.0);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, transport::MessageType::ConfigReject);
}

TEST(HubRuntime, NoiseOnTheLinkIsCountedNotFatal)
{
    transport::LinkPair link(1e6);
    HubRuntime hub(link, accelChannels(), msp430());

    link.phoneToHub().send({0xDE, 0xAD, 0xBE, 0xEF}, 0.0);
    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({1, motionIl}), 0.001);
    hub.pollLink(1.0);

    EXPECT_GT(hub.linkDropBytes(), 0u);
    EXPECT_TRUE(hub.engine().hasCondition(1));
}

TEST(HubRuntime, CapacityAccountsForInstalledConditions)
{
    transport::LinkPair link(1e6);
    // A hub MCU with room for one motion condition but not many.
    McuModel tiny{"tiny", 1.0, 1000.0};
    HubRuntime hub(link, accelChannels(), tiny);

    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({1, motionIl}), 0.0);
    link.phoneToHub().sendFrame(
        transport::encodeConfigPush(
            {2, "ACC_X -> movingAvg(id=1, params={20});\n"
                "1 -> minThreshold(id=2, params={3});\n"
                "2 -> OUT;\n"}),
        0.001);
    hub.pollLink(1.0);

    const auto frames = phoneSideFrames(link, 2.0);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, transport::MessageType::ConfigAck);
    EXPECT_EQ(frames[1].type, transport::MessageType::ConfigReject);
}


TEST(HubRuntime, BatchStreamingShipsQuantizedSamples)
{
    transport::LinkPair link(1e6);
    HubRuntime hub(link, accelChannels(), msp430());
    hub.enableBatchStreaming(1, 5); // ACC_Y in batches of 5

    for (int i = 0; i < 12; ++i)
        hub.pushSamples({0.0, static_cast<double>(i) * 0.5, 9.8},
                        i * 0.02);

    const auto frames = phoneSideFrames(link, 10.0);
    ASSERT_EQ(frames.size(), 2u); // 12 samples -> two full batches
    const auto batch = transport::decodeSensorBatch(frames[0]);
    EXPECT_EQ(batch.channelIndex, 1);
    EXPECT_DOUBLE_EQ(batch.firstTimestamp, 0.0);
    EXPECT_DOUBLE_EQ(batch.sampleRateHz, 50.0);
    ASSERT_EQ(batch.samples.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i)
        EXPECT_NEAR(batch.samples[i],
                    static_cast<double>(i) * 0.5, batch.scale);

    const auto batch2 = transport::decodeSensorBatch(frames[1]);
    EXPECT_NEAR(batch2.firstTimestamp, 0.1, 1e-9);
}

TEST(HubRuntime, BatchStreamingCanBeDisabled)
{
    transport::LinkPair link(1e6);
    HubRuntime hub(link, accelChannels(), msp430());
    hub.enableBatchStreaming(0, 4);
    for (int i = 0; i < 4; ++i)
        hub.pushSamples({1.0, 2.0, 3.0}, i * 0.02);
    EXPECT_EQ(phoneSideFrames(link, 10.0).size(), 1u);

    hub.disableBatchStreaming(0);
    for (int i = 0; i < 8; ++i)
        hub.pushSamples({1.0, 2.0, 3.0}, 1.0 + i * 0.02);
    EXPECT_TRUE(phoneSideFrames(link, 20.0).empty());
}

TEST(HubRuntime, BatchStreamingRejectsBadConfig)
{
    transport::LinkPair link(1e6);
    HubRuntime hub(link, accelChannels(), msp430());
    EXPECT_THROW(hub.enableBatchStreaming(9, 4), ConfigError);
    EXPECT_THROW(hub.enableBatchStreaming(0, 0), ConfigError);
}

} // namespace
} // namespace sidewinder::hub
