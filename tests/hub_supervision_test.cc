/**
 * @file
 * Tests for the fault-tolerance layer around the hub: heartbeat
 * beacons with boot epochs, brownout resets that drop engine state,
 * idempotent config re-pushes, and the phone-side supervisor's
 * death-detection / recovery loop (docs/fault-model.md).
 */

#include <gtest/gtest.h>

#include "core/algorithm.h"
#include "core/pipeline.h"
#include "core/sensor_manager.h"
#include "core/sensors.h"
#include "hub/mcu.h"
#include "hub/runtime.h"
#include "transport/link.h"
#include "transport/messages.h"
#include "transport/reliable.h"

namespace sidewinder::hub {
namespace {

const char *motionIl = "ACC_X -> movingAvg(id=1, params={10});\n"
                       "ACC_Y -> movingAvg(id=2, params={10});\n"
                       "ACC_Z -> movingAvg(id=3, params={10});\n"
                       "1,2,3 -> vectorMagnitude(id=4);\n"
                       "4 -> minThreshold(id=5, params={15});\n"
                       "5 -> OUT;\n";

/** The Figure 2a pipeline, the supervisor's re-push guinea pig. */
core::ProcessingPipeline
motionPipeline()
{
    core::ProcessingPipeline pipeline;
    std::vector<core::ProcessingBranch> branches;
    branches.emplace_back(core::channel::accelerometerX);
    branches.emplace_back(core::channel::accelerometerY);
    branches.emplace_back(core::channel::accelerometerZ);
    for (auto &branch : branches)
        branch.add(core::MovingAverage(10));
    pipeline.add(branches);
    pipeline.add(core::VectorMagnitude());
    pipeline.add(core::MinThreshold(15));
    return pipeline;
}

/** Drain and decode all frames on the hub-to-phone direction. */
std::vector<transport::Frame>
phoneSideFrames(transport::LinkPair &link, double now)
{
    transport::FrameDecoder decoder;
    decoder.feed(link.hubToPhone().receive(now));
    std::vector<transport::Frame> frames;
    while (auto frame = decoder.poll())
        frames.push_back(*frame);
    return frames;
}

/** Records wake-up callbacks for assertions. */
class Recorder : public core::SensorEventListener
{
  public:
    void
    onSensorEvent(const core::SensorData &data) override
    {
        events.push_back(data);
    }
    std::vector<core::SensorData> events;
};

/** Step hub and manager together from @p from to @p to. */
void
driveBoth(HubRuntime &hub, core::SidewinderSensorManager &manager,
          double from, double to, double step = 0.05)
{
    for (double t = from; t <= to + 1e-9; t += step) {
        hub.pollLink(t);
        manager.poll(t);
    }
}

TEST(HubSupervision, HeartbeatCarriesBootEpoch)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());
    hub.enableHeartbeats(0.5);

    hub.pollLink(0.0);
    auto frames = phoneSideFrames(link, 1.0);
    ASSERT_EQ(frames.size(), 1u);
    ASSERT_EQ(frames[0].type, transport::MessageType::Heartbeat);
    auto beat = transport::decodeHeartbeat(frames[0]);
    EXPECT_EQ(beat.bootId, 0u);

    // Beacons respect the interval: nothing new 0.2 s later, one more
    // after the full interval elapses.
    hub.pollLink(0.2);
    EXPECT_TRUE(phoneSideFrames(link, 1.0).empty());
    hub.pollLink(0.6);
    ASSERT_EQ(phoneSideFrames(link, 2.0).size(), 1u);

    hub.reboot(10.0);
    EXPECT_EQ(hub.bootId(), 1u);
    hub.pollLink(10.1);
    frames = phoneSideFrames(link, 11.0);
    ASSERT_EQ(frames.size(), 1u);
    beat = transport::decodeHeartbeat(frames[0]);
    EXPECT_EQ(beat.bootId, 1u);
    EXPECT_LT(beat.uptimeSeconds, 1.0); // uptime restarted at reboot
}

TEST(HubSupervision, RebootDropsAllEngineState)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());

    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({7, motionIl}), 0.0);
    hub.pollLink(1.0);
    (void)phoneSideFrames(link, 2.0); // ack
    ASSERT_TRUE(hub.engine().hasCondition(7));

    hub.reboot(5.0);
    EXPECT_FALSE(hub.engine().hasCondition(7));

    // The amnesiac hub rejects a remove for the forgotten condition.
    link.phoneToHub().sendFrame(transport::encodeConfigRemove({7}),
                                5.0);
    hub.pollLink(6.0);
    const auto frames = phoneSideFrames(link, 7.0);
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0].type, transport::MessageType::ConfigReject);
}

TEST(HubSupervision, RepushedConfigIsIdempotent)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());

    // The same push twice — a late retransmit or a supervisor re-push
    // racing an intact install — must ack both times, not reject or
    // double-install.
    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({7, motionIl}), 0.0);
    hub.pollLink(1.0);
    link.phoneToHub().sendFrame(
        transport::encodeConfigPush({7, motionIl}), 1.0);
    hub.pollLink(2.0);

    const auto frames = phoneSideFrames(link, 3.0);
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, transport::MessageType::ConfigAck);
    EXPECT_EQ(frames[1].type, transport::MessageType::ConfigAck);
    EXPECT_TRUE(hub.engine().hasCondition(7));
}

TEST(HubSupervision, ManagerDetectsDeathAndRecovers)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());
    hub.enableReliableTransport();
    hub.enableHeartbeats(0.5);

    core::SidewinderSensorManager manager(
        link, core::accelerometerChannels());
    manager.enableReliableTransport();
    manager.enableSupervision({0.5, 3.0}, 0.0);

    Recorder listener;
    const int id = manager.push(motionPipeline(), &listener, 0.0);
    driveBoth(hub, manager, 0.05, 5.0);
    ASSERT_EQ(manager.state(id), core::ConditionState::Active);
    EXPECT_FALSE(manager.hubDown());

    // Brownout: the hub goes dark at t=5. Bytes the phone sends reach
    // a dead receiver; after three silent beacon intervals the
    // supervisor must declare the hub down.
    for (double t = 5.05; t <= 10.0 + 1e-9; t += 0.05) {
        (void)link.phoneToHub().receive(t);
        manager.poll(t);
    }
    EXPECT_TRUE(manager.hubDown());
    EXPECT_EQ(manager.supervisionStats().hubDeathsDetected, 1u);
    EXPECT_GT(manager.hubDownSeconds(10.0), 3.0);

    // Power returns: the hub reboots with empty state, its next
    // beacon carries a new boot epoch, and the supervisor re-pushes
    // the shadow copy until the condition is Active again.
    hub.reboot(10.0);
    ASSERT_FALSE(hub.engine().hasCondition(id));
    driveBoth(hub, manager, 10.05, 15.0);

    EXPECT_FALSE(manager.hubDown());
    EXPECT_EQ(manager.state(id), core::ConditionState::Active);
    EXPECT_TRUE(hub.engine().hasCondition(id));
    EXPECT_GE(manager.supervisionStats().rebootsDetected, 1u);
    EXPECT_GE(manager.supervisionStats().repushedConditions, 1u);
    ASSERT_EQ(manager.downWindows().size(), 1u);
    EXPECT_NEAR(manager.downWindows()[0].first, 6.5, 0.5);
    // The closed window no longer grows.
    EXPECT_DOUBLE_EQ(manager.hubDownSeconds(20.0),
                     manager.hubDownSeconds(15.0));
}

TEST(HubSupervision, BrownoutBetweenStageAndCommitRollsBackAndRecovers)
{
    transport::LinkPair link(115200.0);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());
    hub.enableReliableTransport();
    hub.enableHeartbeats(0.5);

    core::SidewinderSensorManager manager(
        link, core::accelerometerChannels());
    manager.enableReliableTransport();
    manager.enableSupervision({0.5, 3.0}, 0.0);

    Recorder listener;
    const int id = manager.push(motionPipeline(), &listener, 0.0);
    driveBoth(hub, manager, 0.05, 3.0);
    ASSERT_EQ(manager.state(id), core::ConditionState::Active);

    // Stage a retuned replacement: the delta reaches the hub's shadow
    // slot but the commit has not been sent yet.
    core::ProcessingPipeline retuned = motionPipeline();
    retuned.add(core::MinThreshold(20)); // deeper variant, same prefix
    manager.beginUpdate(3.0);
    manager.updateCondition(id, retuned, 3.0);
    driveBoth(hub, manager, 3.05, 4.0);
    ASSERT_TRUE(hub.updateInProgress());
    ASSERT_EQ(hub.engine().stagedCount(), 1u);

    // Brownout exactly between stage and commit: the staged B plan
    // lives in hub RAM only, so power loss erases it. The commit the
    // phone then sends reaches an amnesiac hub.
    hub.reboot(4.0);
    manager.commitUpdate(4.0);
    driveBoth(hub, manager, 4.05, 10.0);

    // Whichever signal arrives first — the hub's "no open update
    // transaction" rollback ack or the reboot-epoch heartbeat — the
    // phone must conclude the update died, keep its shadow copy, and
    // let the supervisor re-install the A plan.
    EXPECT_FALSE(manager.updateInProgress());
    EXPECT_EQ(manager.reconfigStats().updatesCommitted, 0u);
    EXPECT_EQ(manager.reconfigStats().updatesRolledBack, 1u);
    EXPECT_FALSE(manager.lastUpdateError().empty());
    EXPECT_EQ(manager.state(id), core::ConditionState::Active);
    EXPECT_TRUE(hub.engine().hasCondition(id));
    EXPECT_EQ(hub.engine().stagedCount(), 0u);
    EXPECT_FALSE(hub.updateInProgress());
    EXPECT_EQ(hub.configEpoch(), 0u); // nothing ever committed
    EXPECT_GE(manager.supervisionStats().rebootsDetected, 1u);

    // The retry under a fresh epoch goes through cleanly.
    manager.beginUpdate(10.0);
    manager.updateCondition(id, retuned, 10.0);
    manager.commitUpdate(10.0);
    driveBoth(hub, manager, 10.05, 13.0);
    EXPECT_FALSE(manager.updateInProgress());
    EXPECT_EQ(manager.reconfigStats().updatesCommitted, 1u);
    EXPECT_EQ(hub.configEpoch(), manager.configEpoch());
    EXPECT_GT(hub.configEpoch(), 0u);
}

TEST(HubSupervision, WakeUpsFlowThroughReliableTransport)
{
    transport::LinkPair link(1e6);
    HubRuntime hub(link, core::accelerometerChannels(), msp430());
    hub.enableReliableTransport();

    core::SidewinderSensorManager manager(
        link, core::accelerometerChannels());
    manager.enableReliableTransport();

    Recorder listener;
    const int id = manager.push(motionPipeline(), &listener, 0.0);
    driveBoth(hub, manager, 0.05, 2.0);
    ASSERT_EQ(manager.state(id), core::ConditionState::Active);

    for (int i = 0; i < 10; ++i)
        hub.pushSamples({20.0, 20.0, 20.0}, 2.0 + i * 0.02);
    driveBoth(hub, manager, 2.25, 4.0);

    ASSERT_FALSE(listener.events.empty());
    EXPECT_GE(listener.events[0].triggerValue, 15.0);
    EXPECT_EQ(listener.events[0].conditionId, id);
    // The wake-up travelled as reliable data and was acked.
    ASSERT_NE(hub.reliableStats(), nullptr);
    EXPECT_GE(hub.reliableStats()->framesSent, 1u);
    EXPECT_GE(hub.reliableStats()->acksReceived, 1u);
    EXPECT_EQ(hub.reliableStats()->framesLost, 0u);
}

} // namespace
} // namespace sidewinder::hub
