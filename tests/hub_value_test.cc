/**
 * @file
 * Unit tests for the hub Value variant: kind tagging, typed access,
 * and cost-unit accounting.
 */

#include <gtest/gtest.h>

#include "hub/value.h"
#include "support/error.h"

namespace sidewinder::hub {
namespace {

TEST(Value, DefaultIsScalarZero)
{
    const Value v;
    EXPECT_EQ(v.kind(), il::ValueKind::Scalar);
    EXPECT_DOUBLE_EQ(v.scalar(), 0.0);
    EXPECT_EQ(v.units(), 1u);
}

TEST(Value, ScalarRoundTrip)
{
    const Value v(3.25);
    EXPECT_EQ(v.kind(), il::ValueKind::Scalar);
    EXPECT_DOUBLE_EQ(v.scalar(), 3.25);
    EXPECT_THROW(v.frame(), InternalError);
    EXPECT_THROW(v.complexFrame(), InternalError);
}

TEST(Value, FrameRoundTrip)
{
    const Value v(std::vector<double>{1.0, 2.0, 3.0});
    EXPECT_EQ(v.kind(), il::ValueKind::Frame);
    EXPECT_EQ(v.frame().size(), 3u);
    EXPECT_EQ(v.units(), 3u);
    EXPECT_THROW(v.scalar(), InternalError);
}

TEST(Value, ComplexFrameRoundTrip)
{
    std::vector<dsp::Complex> bins = {{1.0, 2.0}, {3.0, -4.0}};
    const Value v(std::move(bins));
    EXPECT_EQ(v.kind(), il::ValueKind::ComplexFrame);
    ASSERT_EQ(v.complexFrame().size(), 2u);
    EXPECT_DOUBLE_EQ(v.complexFrame()[1].imag(), -4.0);
    EXPECT_EQ(v.units(), 2u);
    EXPECT_THROW(v.frame(), InternalError);
}

TEST(Value, CopyAndReassign)
{
    Value v(1.5);
    Value w = v;
    v = Value(std::vector<double>{9.0});
    EXPECT_EQ(w.kind(), il::ValueKind::Scalar);
    EXPECT_DOUBLE_EQ(w.scalar(), 1.5);
    EXPECT_EQ(v.kind(), il::ValueKind::Frame);
}

} // namespace
} // namespace sidewinder::hub
