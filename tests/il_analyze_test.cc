/**
 * @file
 * Tests for the static IL analyzer: diagnostic codes, the cost model
 * (cycles, RAM, wake-rate bound), the text/JSON renderers, the hub
 * admission verdict, and the golden seeded-bad corpus in tests/data/.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hub/mcu.h"
#include "il/algorithm_info.h"
#include "il/analyze.h"
#include "il/optimize.h"
#include "il/parser.h"
#include "il/validate.h"
#include "support/error.h"

namespace sidewinder::il {
namespace {

/** The default prototype channel set (mirrors core::allChannels()). */
const std::vector<ChannelInfo> kChannels = {{"ACC_X", 50.0},
                                            {"ACC_Y", 50.0},
                                            {"ACC_Z", 50.0},
                                            {"AUDIO", 4000.0},
                                            {"BARO", 20.0}};

AnalysisResult
analyzeText(const std::string &text)
{
    return analyze(parse(text), kChannels);
}

std::set<std::string>
codesOf(const AnalysisResult &result)
{
    std::set<std::string> codes;
    for (const auto &d : result.diagnostics)
        codes.insert(d.code);
    return codes;
}

TEST(Analyze, CleanProgramHasNoDiagnostics)
{
    const auto result = analyzeText(
        "ACC_X -> movingAvg(id=1, params={5});\n"
        "1 -> minThreshold(id=2, params={2});\n"
        "2 -> OUT;\n");
    EXPECT_TRUE(result.ok());
    EXPECT_TRUE(result.diagnostics.empty())
        << renderText(result, "<test>");
    EXPECT_EQ(result.streams.size(), 2u);
}

TEST(Analyze, ReportsEveryErrorNotJustTheFirst)
{
    // validate() stops at the first violation; analyze() keeps going.
    const auto result = analyzeText(
        "AUDIO -> window(id=1, params={100});\n"
        "1 -> fft(id=2);\n"
        "2 -> OUT;\n");
    EXPECT_FALSE(result.ok());
    const auto codes = codesOf(result);
    EXPECT_TRUE(codes.count(SW010_FRAME_NOT_POW2));
    EXPECT_TRUE(codes.count(SW013_OUT_STATEMENT));
    EXPECT_GE(result.errorCount(), 2u);
}

TEST(Analyze, DiagnosticsCarryRealSpans)
{
    const auto result = analyzeText(
        "ACC_X -> movingAvg(id=1, params={5});\n"
        "1 -> fooBar(id=2);\n"
        "2 -> OUT;\n");
    ASSERT_FALSE(result.diagnostics.empty());
    for (const auto &d : result.diagnostics) {
        EXPECT_GT(d.line, 0);
        EXPECT_GT(d.column, 0);
    }
    EXPECT_EQ(result.diagnostics.front().line, 2);
}

TEST(Analyze, CostModelMatchesAlgorithmTable)
{
    const auto result = analyzeText(
        "ACC_X -> movingAvg(id=1, params={5});\n"
        "1 -> minThreshold(id=2, params={2});\n"
        "2 -> OUT;\n");
    ASSERT_TRUE(result.ok());

    const auto avg = findAlgorithm("movingAvg");
    const auto thr = findAlgorithm("minThreshold");
    ASSERT_TRUE(avg && thr);

    // Both nodes run per 50 Hz scalar sample.
    const auto &n1 = result.cost.nodes.at(1);
    EXPECT_DOUBLE_EQ(n1.invokeRateHz, 50.0);
    EXPECT_DOUBLE_EQ(n1.cyclesPerSecond,
                     n1.cyclesPerInvoke * 50.0);
    EXPECT_DOUBLE_EQ(result.cost.cyclesPerSecond,
                     result.cost.nodes.at(1).cyclesPerSecond +
                         result.cost.nodes.at(2).cyclesPerSecond);
    EXPECT_GT(result.cost.ramBytes, 0u);
    // minThreshold is conditional, so it bounds the wake rate at its
    // firing rate.
    EXPECT_DOUBLE_EQ(result.cost.wakeRateBoundHz, 50.0);
}

TEST(Analyze, WindowHopSlowsTheWakeRate)
{
    const auto result = analyzeText(
        "AUDIO -> window(id=1, params={256});\n"
        "1 -> rms(id=2);\n"
        "2 -> minThreshold(id=3, params={0.1});\n"
        "3 -> OUT;\n");
    ASSERT_TRUE(result.ok());
    // 4000 Hz / 256-sample tumbling window = 15.625 windows/s.
    EXPECT_DOUBLE_EQ(result.cost.wakeRateBoundHz, 4000.0 / 256.0);
}

TEST(Analyze, RamGrowsWithWindowSize)
{
    const auto small = analyzeText(
        "ACC_X -> window(id=1, params={64});\n"
        "1 -> stddev(id=2);\n"
        "2 -> minThreshold(id=3, params={1});\n"
        "3 -> OUT;\n");
    const auto large = analyzeText(
        "ACC_X -> window(id=1, params={4096});\n"
        "1 -> stddev(id=2);\n"
        "2 -> minThreshold(id=3, params={1});\n"
        "3 -> OUT;\n");
    ASSERT_TRUE(small.ok());
    ASSERT_TRUE(large.ok());
    EXPECT_GT(large.cost.ramBytes, small.cost.ramBytes);
}

TEST(Analyze, InvokeCostAppliesFftFactor)
{
    const auto fft = findAlgorithm("fft");
    const auto rms = findAlgorithm("rms");
    ASSERT_TRUE(fft && rms);
    NodeStream frame;
    frame.kind = ValueKind::Frame;
    frame.frameSize = 256;
    frame.fireRateHz = 15.625;
    // FFT-family cost carries the extra log2(N) factor.
    EXPECT_GT(invokeCost(*fft, frame) / fft->cyclesPerUnit,
              invokeCost(*rms, frame) / rms->cyclesPerUnit);
}

TEST(Analyze, RenderTextIsGccStyle)
{
    const auto result = analyzeText(
        "AUDIO -> window(id=1, params={100});\n"
        "1 -> fft(id=2);\n"
        "2 -> OUT;\n");
    const std::string text = renderText(result, "prog.il");
    EXPECT_NE(text.find("prog.il:2:1: error: [SW010]"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("hint:"), std::string::npos);
    EXPECT_NE(text.find("error(s)"), std::string::npos);
}

TEST(Analyze, RenderJsonHasStructure)
{
    const auto result = analyzeText(
        "ACC_X -> movingAvg(id=1, params={5});\n"
        "1 -> minThreshold(id=2, params={2});\n"
        "2 -> OUT;\n");
    const std::string json = renderJson(result, "prog.il");
    EXPECT_NE(json.find("\"file\":\"prog.il\""), std::string::npos);
    EXPECT_NE(json.find("\"ok\":true"), std::string::npos);
    EXPECT_NE(json.find("\"cyclesPerSecond\""), std::string::npos);
    EXPECT_NE(json.find("\"ramBytes\""), std::string::npos);
    EXPECT_NE(json.find("\"wakeRateBoundHz\""), std::string::npos);
}

TEST(Analyze, JsonEscapesSpecialCharacters)
{
    AnalysisResult result;
    Diagnostic d;
    d.code = "SW999";
    d.message = "quote \" backslash \\ newline \n tab \t";
    result.diagnostics.push_back(d);
    const std::string json = renderJson(result, "a\"b");
    EXPECT_NE(json.find("a\\\"b"), std::string::npos);
    EXPECT_NE(json.find("\\\\"), std::string::npos);
    EXPECT_NE(json.find("\\n"), std::string::npos);
    EXPECT_EQ(json.find('\n', json.find("diagnostics")),
              json.rfind('\n'));
}

/**
 * The admission-control headline: a program validate() happily
 * accepts — tiny compute load — that no MCU can actually hold in RAM.
 * Only the analyzer's RAM model catches it.
 */
TEST(Analyze, SelectMcuRejectsRamHogThatValidatePasses)
{
    const Program program = parse(
        "ACC_X -> window(id=1, params={16384});\n"
        "1 -> stddev(id=2);\n"
        "2 -> minThreshold(id=3, params={0.5});\n"
        "3 -> OUT;\n");
    EXPECT_NO_THROW(validate(program, kChannels));

    const auto result = analyze(program, kChannels);
    EXPECT_TRUE(result.ok());
    // Under the old cycles-only model this program was admissible.
    EXPECT_TRUE(
        hub::canRunInRealTime(hub::msp430(),
                              result.cost.cyclesPerSecond));
    EXPECT_GT(result.cost.ramBytes, hub::lm4f120().ramBytes);
    EXPECT_THROW(hub::selectMcu(program, kChannels), CapabilityError);

    const auto verdict = hub::admissionDiagnostics(result.cost);
    ASSERT_EQ(verdict.size(), 1u);
    EXPECT_EQ(verdict.front().code, SW017_ADMISSION);
    EXPECT_EQ(verdict.front().severity, Severity::Error);
}

TEST(Analyze, AdmissionNotesTheBiggerMcu)
{
    // Audio FFT load: fits the LM4F120 but not the MSP430, which the
    // admission pass surfaces as an SW201 note.
    const auto result = analyzeText(
        "AUDIO -> window(id=1, params={256});\n"
        "1 -> fft(id=2);\n"
        "2 -> spectrum(id=3);\n"
        "3 -> peakToMeanRatio(id=4);\n"
        "4 -> minThreshold(id=5, params={4});\n"
        "5 -> OUT;\n");
    ASSERT_TRUE(result.ok());
    const auto verdict = hub::admissionDiagnostics(result.cost);
    ASSERT_EQ(verdict.size(), 1u);
    EXPECT_EQ(verdict.front().code, SW201_MCU_ASSIGNMENT);
    EXPECT_EQ(verdict.front().severity, Severity::Note);
    EXPECT_NE(verdict.front().message.find("LM4F120"),
              std::string::npos);
}

TEST(Analyze, FitsBudgetChecksBothAxes)
{
    ProgramCost cost;
    cost.cyclesPerSecond = 1000.0;
    cost.ramBytes = 1024;
    EXPECT_TRUE(hub::fitsBudget(hub::msp430(), cost));
    cost.ramBytes = 64 * 1024;
    EXPECT_FALSE(hub::fitsBudget(hub::msp430(), cost));
    cost.ramBytes = 1024;
    cost.cyclesPerSecond = 1e9;
    EXPECT_FALSE(hub::fitsBudget(hub::msp430(), cost));

    // ramBytes == 0 means "no RAM budget modeled": only cycles gate.
    const hub::McuModel legacy{"legacy", 1.0, 2000.0};
    cost.cyclesPerSecond = 1000.0;
    cost.ramBytes = 1u << 30;
    EXPECT_TRUE(hub::fitsBudget(legacy, cost));
}

// ---------------------------------------------------------------------
// Golden corpus: every tests/data/*.il file declares the exact set of
// diagnostic codes it must trigger in a leading "# expect:" comment.

std::filesystem::path
dataDir()
{
    return std::filesystem::path(SW_TEST_DATA_DIR);
}

std::set<std::string>
parseExpectHeader(const std::string &source, const std::string &name)
{
    std::set<std::string> codes;
    std::istringstream lines(source);
    std::string line;
    while (std::getline(lines, line)) {
        const auto marker = line.find("# expect:");
        if (marker == std::string::npos)
            continue;
        std::istringstream words(line.substr(marker + 9));
        std::string word;
        while (words >> word)
            codes.insert(word);
        return codes;
    }
    ADD_FAILURE() << name << " has no '# expect:' header";
    return codes;
}

TEST(AnalyzeCorpus, EveryFileTriggersExactlyItsExpectedCodes)
{
    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dataDir()))
        if (entry.path().extension() == ".il")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    ASSERT_GE(files.size(), 20u) << "corpus went missing";

    for (const auto &path : files) {
        std::ifstream in(path);
        ASSERT_TRUE(in) << path;
        std::ostringstream text;
        text << in.rdbuf();
        const std::string name = path.filename().string();

        const std::set<std::string> expected =
            parseExpectHeader(text.str(), name);

        AnalysisResult result;
        ASSERT_NO_THROW(result = analyzeText(text.str())) << name;
        // Fold in the admission verdict exactly as swlint does.
        if (result.ok()) {
            const auto optimized =
                analyze(optimize(parse(text.str())), kChannels);
            for (auto &d : hub::admissionDiagnostics(optimized.cost))
                result.diagnostics.push_back(std::move(d));
        }

        EXPECT_EQ(codesOf(result), expected)
            << name << ":\n"
            << renderText(result, name);
    }
}

TEST(AnalyzeCorpus, ErrorFilesAgreeWithValidate)
{
    for (const auto &entry :
         std::filesystem::directory_iterator(dataDir())) {
        if (entry.path().extension() != ".il")
            continue;
        std::ifstream in(entry.path());
        std::ostringstream text;
        text << in.rdbuf();
        const Program program = parse(text.str());
        const AnalysisResult result = analyze(program, kChannels);
        bool validated = true;
        try {
            validate(program, kChannels);
        } catch (const ParseError &) {
            validated = false;
        }
        EXPECT_EQ(result.ok(), validated)
            << entry.path().filename() << ":\n"
            << renderText(result, entry.path().filename().string());
    }
}

} // namespace
} // namespace sidewinder::il
