/**
 * @file
 * Tests for the IL common-subexpression optimizer: duplicate chains
 * collapse, references are rewritten, semantics are unchanged, and
 * the sensor manager ships the optimized form.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "hub/engine.h"
#include "il/optimize.h"
#include "il/parser.h"
#include "il/validate.h"
#include "il/writer.h"
#include "support/rng.h"

namespace sidewinder::il {
namespace {

TEST(Optimize, IdentityOnProgramsWithoutDuplicates)
{
    const Program p =
        parse("ACC_X -> movingAvg(id=1, params={10});\n"
              "1 -> minThreshold(id=2, params={3});\n"
              "2 -> OUT;\n");
    EXPECT_EQ(optimize(p), p);
    EXPECT_EQ(redundantStatementCount(p), 0u);
}

TEST(Optimize, CollapsesDuplicateBranches)
{
    const Program p =
        parse("ACC_X -> movingAvg(id=1, params={10});\n"
              "ACC_X -> movingAvg(id=2, params={10});\n"
              "1,2 -> vectorMagnitude(id=3);\n"
              "3 -> minThreshold(id=4, params={5});\n"
              "4 -> OUT;\n");
    const Program o = optimize(p);
    ASSERT_EQ(o.statements.size(), 4u);
    EXPECT_EQ(redundantStatementCount(p), 1u);
    // The magnitude now reads node 1 twice.
    EXPECT_EQ(o.statements[1].inputs[0].node, 1);
    EXPECT_EQ(o.statements[1].inputs[1].node, 1);
}

TEST(Optimize, DistinguishesDifferentParams)
{
    const Program p =
        parse("ACC_X -> movingAvg(id=1, params={10});\n"
              "ACC_X -> movingAvg(id=2, params={20});\n"
              "1,2 -> vectorMagnitude(id=3);\n"
              "3 -> OUT;\n");
    EXPECT_EQ(redundantStatementCount(p), 0u);
}

TEST(Optimize, CollapsesTransitiveChains)
{
    // Two identical two-stage chains: both stages deduplicate.
    const Program p =
        parse("AUDIO -> window(id=1, params={64});\n"
              "1 -> rms(id=2);\n"
              "AUDIO -> window(id=3, params={64});\n"
              "3 -> rms(id=4);\n"
              "2,4 -> or(id=5);\n"
              "5 -> OUT;\n");
    const Program o = optimize(p);
    EXPECT_EQ(redundantStatementCount(p), 2u);
    ASSERT_EQ(o.statements.size(), 4u);
    EXPECT_NO_THROW(validate(o, {{"AUDIO", 4000.0}}));
}

TEST(Optimize, SirenConditionShedsItsSharedPrefix)
{
    const auto app = apps::makeSirenApp();
    const Program p = app->wakeCondition().compile();
    const Program o = optimize(p);
    EXPECT_GT(redundantStatementCount(p), 3u);
    EXPECT_LT(write(o).size(), write(p).size());
    EXPECT_NO_THROW(validate(o, app->channels()));
}

TEST(Optimize, SemanticsPreservedOnTheEngine)
{
    const auto app = apps::makeSirenApp();
    const Program original = app->wakeCondition().compile();
    const Program optimized = optimize(original);

    hub::Engine a(app->channels());
    hub::Engine b(app->channels());
    a.addCondition(1, original);
    b.addCondition(1, optimized);

    sidewinder::Rng rng(3);
    std::vector<double> wakes_a, wakes_b;
    for (int i = 0; i < 4000; ++i) {
        const double v = rng.gaussian(0.0, 0.2);
        const double t = i * 0.00025;
        a.pushSamples({v}, t);
        b.pushSamples({v}, t);
        for (const auto &e : a.drainWakeEvents())
            wakes_a.push_back(e.timestamp);
        for (const auto &e : b.drainWakeEvents())
            wakes_b.push_back(e.timestamp);
    }
    EXPECT_EQ(wakes_a, wakes_b);

    // The engine already shares within a program, so the node count
    // matches; the saving is in IL size and hub install work.
    EXPECT_EQ(a.nodeCount(), b.nodeCount());
}

TEST(Optimize, ManagerShipsOptimizedIl)
{
    // The shipped IL of the siren condition contains exactly one
    // window statement (three in the unoptimized compile).
    const auto app = apps::makeSirenApp();
    const Program shipped =
        optimize(app->wakeCondition().compile());
    int windows = 0;
    for (const auto &stmt : shipped.statements)
        windows += stmt.algorithm == "window" ? 1 : 0;
    EXPECT_EQ(windows, 1);
}

} // namespace
} // namespace sidewinder::il
