/**
 * @file
 * Tests for the IL lowering pass and the ExecutionPlan: dedupe
 * behavior, canonical-key agreement with the optimizer, cost agreement
 * with the analyzer, toProgram round-trips, and a renderPlan golden
 * corpus over tests/data/*.il (regenerate with SW_UPDATE_GOLDENS=1).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "il/analyze.h"
#include "il/lower.h"
#include "il/optimize.h"
#include "il/parser.h"
#include "il/plan.h"
#include "il/validate.h"
#include "il/writer.h"
#include "support/error.h"

namespace sidewinder::il {
namespace {

/** The default prototype channel set (mirrors core::allChannels()). */
const std::vector<ChannelInfo> kChannels = {{"ACC_X", 50.0},
                                            {"ACC_Y", 50.0},
                                            {"ACC_Z", 50.0},
                                            {"AUDIO", 4000.0},
                                            {"BARO", 20.0}};

const char *const kDuplicateBranches =
    "ACC_X -> movingAvg(id=1, params={10});\n"
    "ACC_X -> movingAvg(id=2, params={10});\n"
    "1 -> minThreshold(id=3, params={5});\n"
    "2 -> maxThreshold(id=4, params={-5});\n"
    "3,4 -> or(id=5);\n"
    "5 -> OUT;\n";

TEST(Lower, DedupesDuplicateSubtreesByDefault)
{
    const Program p = parse(kDuplicateBranches);
    const ExecutionPlan plan = lower(p, kChannels);
    // The two identical movingAvg branches collapse to one node.
    EXPECT_EQ(plan.nodeCount(), 4u);
}

TEST(Lower, PreservesDuplicatesWhenDedupeIsOff)
{
    const Program p = parse(kDuplicateBranches);
    const ExecutionPlan plan = lower(p, kChannels, LowerOptions{false});
    EXPECT_EQ(plan.nodeCount(), 5u);
}

TEST(Lower, RejectsInvalidPrograms)
{
    EXPECT_THROW(lower(parse("ACC_X -> bogus(id=1);\n1 -> OUT;\n"),
                       kChannels),
                 ParseError);
    EXPECT_THROW(lower(Program{}, kChannels), ParseError);
}

TEST(Lower, InputRefsResolveToChannelsAndNodes)
{
    const Program p =
        parse("ACC_X -> movingAvg(id=1, params={5});\n"
              "1 -> minThreshold(id=2, params={2});\n"
              "2 -> OUT;\n");
    const ExecutionPlan plan = lower(p, kChannels);
    ASSERT_EQ(plan.nodeCount(), 2u);
    ASSERT_EQ(plan.inputCounts[0], 1u);
    // Channel refs encode as -(index + 1); ACC_X is plan channel 0.
    EXPECT_EQ(plan.inputsOf(0)[0], -1);
    ASSERT_EQ(plan.inputCounts[1], 1u);
    EXPECT_EQ(plan.inputsOf(1)[0], 0);
    EXPECT_EQ(plan.outNode, 1);
    EXPECT_EQ(plan.primaryChannel, 0);
    EXPECT_EQ(plan.sourceIds[0], 1);
    EXPECT_EQ(plan.sourceIds[1], 2);
}

TEST(Lower, ShareKeysAgreeWithOptimizerDedupe)
{
    // The optimizer and the lowering pass build keys through the same
    // canonicalNodeKey helper, so lowering the raw program and
    // lowering the optimized program yield the same key multiset.
    for (const auto &app : apps::allApps()) {
        const Program p = app->wakeCondition().compile();
        auto raw = lower(p, app->channels()).shareKeys;
        auto optimized =
            lower(optimize(p), app->channels()).shareKeys;
        std::sort(raw.begin(), raw.end());
        std::sort(optimized.begin(), optimized.end());
        EXPECT_EQ(raw, optimized) << app->name();
    }
}

TEST(Lower, NodeCountMatchesAnalyzerPlanNodeCount)
{
    for (const auto &app : apps::allApps()) {
        const Program p = app->wakeCondition().compile();
        const AnalysisResult analysis = analyze(p, app->channels());
        ASSERT_TRUE(analysis.ok()) << app->name();
        EXPECT_EQ(lower(optimize(p), app->channels()).nodeCount(),
                  analysis.cost.planNodeCount)
            << app->name();
    }
}

TEST(Plan, CostAgreesWithAnalyzer)
{
    for (const auto &app : apps::allApps()) {
        const Program p = app->wakeCondition().compile();
        const AnalysisResult analysis = analyze(p, app->channels());
        ASSERT_TRUE(analysis.ok()) << app->name();
        const ProgramCost cost = lower(p, app->channels()).cost();
        EXPECT_DOUBLE_EQ(cost.cyclesPerSecond,
                         analysis.cost.cyclesPerSecond)
            << app->name();
        EXPECT_EQ(cost.ramBytes, analysis.cost.ramBytes)
            << app->name();
        EXPECT_DOUBLE_EQ(cost.wakeRateBoundHz,
                         analysis.cost.wakeRateBoundHz)
            << app->name();
        EXPECT_EQ(cost.planNodeCount, analysis.cost.planNodeCount)
            << app->name();
    }
}

TEST(Plan, ToProgramRoundTripsThroughLowering)
{
    for (const auto &app : apps::allApps()) {
        const Program p = app->wakeCondition().compile();
        const ExecutionPlan plan = lower(p, app->channels());
        const Program canonical = plan.toProgram();
        // The canonical program re-validates and re-lowers to the
        // same plan rendering (ids are dense, so this is a fixpoint).
        EXPECT_NO_THROW(validate(canonical, app->channels()))
            << app->name();
        EXPECT_EQ(renderPlan(lower(canonical, app->channels())),
                  renderPlan(plan))
            << app->name();
    }
}

TEST(Plan, CanonicalKeysUseFullPrecisionParams)
{
    // Two params that agree to 6 significant digits but differ in
    // the 17-digit rendering must not collide.
    const std::vector<std::string> none;
    const std::string a =
        canonicalNodeKey("minThreshold", {1.0000001}, none);
    const std::string b =
        canonicalNodeKey("minThreshold", {1.00000011}, none);
    EXPECT_NE(a, b);
}

// ---------------------------------------------------------------------
// Golden corpus: renderPlan output for every tests/data/*.il file is
// pinned under tests/data/plans/<stem>.plan. Error files pin the
// lowering error text instead. Regenerate with SW_UPDATE_GOLDENS=1.

std::filesystem::path
dataDir()
{
    return std::filesystem::path(SW_TEST_DATA_DIR);
}

std::string
planTextFor(const std::string &source)
{
    try {
        return renderPlan(lower(parse(source), kChannels));
    } catch (const SidewinderError &error) {
        return std::string("error: ") + error.what() + "\n";
    }
}

TEST(PlanGoldens, CorpusMatchesPinnedRenderings)
{
    const bool update = std::getenv("SW_UPDATE_GOLDENS") != nullptr;
    const auto plans_dir = dataDir() / "plans";
    if (update)
        std::filesystem::create_directories(plans_dir);

    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(dataDir()))
        if (entry.path().extension() == ".il")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    ASSERT_GE(files.size(), 20u) << "corpus went missing";

    for (const auto &path : files) {
        std::ifstream in(path);
        ASSERT_TRUE(in) << path;
        std::ostringstream text;
        text << in.rdbuf();
        const std::string actual = planTextFor(text.str());

        const auto golden_path =
            plans_dir / (path.stem().string() + ".plan");
        if (update) {
            std::ofstream out(golden_path);
            ASSERT_TRUE(out) << golden_path;
            out << actual;
            continue;
        }

        std::ifstream golden(golden_path);
        ASSERT_TRUE(golden)
            << golden_path
            << " missing — regenerate with SW_UPDATE_GOLDENS=1";
        std::ostringstream expected;
        expected << golden.rdbuf();
        EXPECT_EQ(actual, expected.str()) << path.filename();
    }
}

} // namespace
} // namespace sidewinder::il
