/**
 * @file
 * Property tests for the intermediate language:
 *  - randomly generated valid programs round-trip exactly through
 *    write() -> parse();
 *  - random byte strings never crash the lexer/parser (they either
 *    parse or throw ParseError);
 *  - every randomly generated valid program passes validation and
 *    installs on an engine;
 *  - the static analyzer never throws on any parser-accepted program
 *    and agrees with validate() on which programs are erroneous.
 */

#include <gtest/gtest.h>

#include "hub/engine.h"
#include "il/analyze.h"
#include "il/parser.h"
#include "il/validate.h"
#include "il/writer.h"
#include "support/error.h"
#include "support/rng.h"

namespace sidewinder::il {
namespace {

const std::vector<ChannelInfo> kChannels = {
    {"ACC_X", 50.0}, {"ACC_Y", 50.0}, {"ACC_Z", 50.0}};

/**
 * Generate a random valid program: a few scalar branches (movingAvg /
 * expMovingAvg chains, possibly a window+reducer), an aggregation if
 * needed, and a terminal threshold.
 */
Program
randomProgram(sidewinder::Rng &rng)
{
    Program program;
    NodeId next_id = 1;
    std::vector<NodeId> tails;

    const auto branch_count = rng.uniformInt(1, 3);
    for (long b = 0; b < branch_count; ++b) {
        const char *channels[] = {"ACC_X", "ACC_Y", "ACC_Z"};
        SourceRef current =
            SourceRef::makeChannel(channels[rng.uniformInt(0, 2)]);

        const auto depth = rng.uniformInt(1, 3);
        for (long d = 0; d < depth; ++d) {
            Statement stmt;
            stmt.inputs = {current};
            stmt.id = next_id++;
            switch (rng.uniformInt(0, 2)) {
              case 0:
                stmt.algorithm = "movingAvg";
                stmt.params = {
                    static_cast<double>(rng.uniformInt(2, 20))};
                break;
              case 1:
                stmt.algorithm = "expMovingAvg";
                stmt.params = {rng.uniform(0.05, 1.0)};
                break;
              default:
                stmt.algorithm = "minThreshold";
                stmt.params = {rng.uniform(-10.0, 10.0)};
                break;
            }
            current = SourceRef::makeNode(stmt.id);
            program.statements.push_back(std::move(stmt));
        }
        tails.push_back(current.node);
    }

    if (tails.size() > 1) {
        Statement agg;
        for (NodeId tail : tails)
            agg.inputs.push_back(SourceRef::makeNode(tail));
        agg.algorithm = "vectorMagnitude";
        agg.id = next_id++;
        program.statements.push_back(agg);
        tails = {agg.id};
    }

    Statement thr;
    thr.inputs = {SourceRef::makeNode(tails[0])};
    thr.algorithm = "minThreshold";
    thr.id = next_id++;
    thr.params = {rng.uniform(0.0, 5.0)};
    program.statements.push_back(thr);

    Statement out;
    out.inputs = {SourceRef::makeNode(thr.id)};
    out.isOut = true;
    program.statements.push_back(out);
    return program;
}

class IlRoundTrip : public ::testing::TestWithParam<int>
{};

TEST_P(IlRoundTrip, WriteParseIsIdentity)
{
    sidewinder::Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 20; ++i) {
        const Program program = randomProgram(rng);
        EXPECT_EQ(parse(write(program)), program);
    }
}

TEST_P(IlRoundTrip, GeneratedProgramsValidateAndInstall)
{
    sidewinder::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
    for (int i = 0; i < 10; ++i) {
        const Program program = randomProgram(rng);
        EXPECT_NO_THROW(validate(program, kChannels));
        hub::Engine engine(kChannels);
        EXPECT_NO_THROW(engine.addCondition(1, program));
        // The engine accepts samples without raising.
        for (int s = 0; s < 25; ++s)
            engine.pushSamples({1.0, 2.0, 3.0}, s * 0.02);
        engine.drainWakeEvents();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlRoundTrip,
                         ::testing::Range(1, 9));

class IlFuzz : public ::testing::TestWithParam<int>
{};

TEST_P(IlFuzz, RandomBytesNeverCrash)
{
    sidewinder::Rng rng(static_cast<std::uint64_t>(GetParam()));
    for (int i = 0; i < 200; ++i) {
        std::string garbage;
        const auto length = rng.uniformInt(0, 120);
        for (long c = 0; c < length; ++c)
            garbage.push_back(
                static_cast<char>(rng.uniformInt(1, 127)));
        try {
            const Program program = parse(garbage);
            // If it happened to parse, validation must not crash
            // either (it may throw ParseError).
            try {
                validate(program, kChannels);
            } catch (const ParseError &) {
            }
        } catch (const ParseError &) {
            // Expected for malformed input.
        }
    }
}

TEST_P(IlFuzz, MutatedValidProgramsNeverCrash)
{
    sidewinder::Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
    for (int i = 0; i < 50; ++i) {
        Program program = randomProgram(rng);
        std::string text = write(program);
        // Flip a few characters.
        for (int m = 0; m < 3; ++m) {
            const auto pos = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<long>(text.size()) - 1));
            text[pos] = static_cast<char>(rng.uniformInt(32, 126));
        }
        try {
            validate(parse(text), kChannels);
        } catch (const ParseError &) {
            // Either outcome is fine; crashing is not.
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlFuzz, ::testing::Range(1, 5));

/**
 * True when validate() accepts @p program — the analyzer must agree
 * (no error diagnostics exactly when validation passes).
 */
bool
validates(const Program &program)
{
    try {
        validate(program, kChannels);
        return true;
    } catch (const ParseError &) {
        return false;
    }
}

class IlAnalyzeProperty : public ::testing::TestWithParam<int>
{};

TEST_P(IlAnalyzeProperty, GeneratedProgramsAnalyzeClean)
{
    sidewinder::Rng rng(static_cast<std::uint64_t>(GetParam()) + 2000);
    for (int i = 0; i < 20; ++i) {
        const Program program = randomProgram(rng);
        const AnalysisResult result = analyze(program, kChannels);
        EXPECT_TRUE(result.ok()) << renderText(result, "<generated>");
        EXPECT_GT(result.cost.cyclesPerSecond, 0.0);
        EXPECT_GT(result.cost.ramBytes, 0u);
    }
}

TEST_P(IlAnalyzeProperty, MutatedProgramsNeverThrowAndMatchValidate)
{
    sidewinder::Rng rng(static_cast<std::uint64_t>(GetParam()) + 2500);
    for (int i = 0; i < 50; ++i) {
        Program program = randomProgram(rng);
        std::string text = write(program);
        for (int m = 0; m < 3; ++m) {
            const auto pos = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<long>(text.size()) - 1));
            text[pos] = static_cast<char>(rng.uniformInt(32, 126));
        }
        Program mutated;
        try {
            mutated = parse(text);
        } catch (const ParseError &) {
            continue; // Syntax errors never reach the analyzer.
        }
        AnalysisResult result;
        ASSERT_NO_THROW(result = analyze(mutated, kChannels)) << text;
        EXPECT_EQ(result.ok(), validates(mutated))
            << text << "\n"
            << renderText(result, "<mutated>");
        // The renderers must cope with whatever came out.
        EXPECT_FALSE(renderText(result, "<mutated>").empty());
        EXPECT_FALSE(renderJson(result, "<mutated>").empty());
    }
}

TEST_P(IlAnalyzeProperty, FuzzedTextNeverThrowsAndMatchesValidate)
{
    sidewinder::Rng rng(static_cast<std::uint64_t>(GetParam()) + 3000);
    for (int i = 0; i < 200; ++i) {
        std::string garbage;
        const auto length = rng.uniformInt(0, 120);
        for (long c = 0; c < length; ++c)
            garbage.push_back(
                static_cast<char>(rng.uniformInt(1, 127)));
        Program program;
        try {
            program = parse(garbage);
        } catch (const ParseError &) {
            continue;
        }
        AnalysisResult result;
        ASSERT_NO_THROW(result = analyze(program, kChannels))
            << garbage;
        EXPECT_EQ(result.ok(), validates(program)) << garbage;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlAnalyzeProperty,
                         ::testing::Range(1, 9));

} // namespace
} // namespace sidewinder::il
