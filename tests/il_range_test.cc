/**
 * @file
 * Value-range abstract interpreter tests:
 *  - unit facts for every SW3xx diagnostic on handcrafted programs;
 *  - a golden corpus over tests/data/ranges/*.il (regenerate with
 *    SW_UPDATE_GOLDENS=1; files whose stem starts with "q15_" are
 *    analyzed in Q15 mode, where SW301 is an error);
 *  - the soundness property the header promises: for every built-in
 *    application and a fleet of fuzzed programs, every value the
 *    double-precision engine emits lies inside the proven interval
 *    (checked with the engine's range tripwire), and any program
 *    with no SW301 finding runs in KernelMode::FixedQ15 with zero
 *    saturation events on inputs inside the declared ranges.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.h"
#include "apps/predefined.h"
#include "core/sensors.h"
#include "dsp/q15.h"
#include "hub/engine.h"
#include "il/analyze_range.h"
#include "il/lower.h"
#include "il/optimize.h"
#include "il/parser.h"
#include "il/plan.h"
#include "support/rng.h"

namespace sidewinder::il {
namespace {

const std::vector<ChannelInfo> kAccChannels = {
    {"ACC_X", 50.0}, {"ACC_Y", 50.0}, {"ACC_Z", 50.0}};

RangeAnalysis
analyzeSource(const std::string &source,
              const std::vector<ChannelInfo> &channels,
              const RangeOptions &options = {})
{
    return analyzeProgramRanges(parse(source), channels, options);
}

bool
hasCode(const RangeAnalysis &analysis, const char *code)
{
    for (const auto &d : analysis.diagnostics)
        if (d.code == code)
            return true;
    return false;
}

const Diagnostic *
findCode(const RangeAnalysis &analysis, const char *code)
{
    for (const auto &d : analysis.diagnostics)
        if (d.code == code)
            return &d;
    return nullptr;
}

TEST(Interval, BasicLattice)
{
    EXPECT_TRUE(Interval::empty().isEmpty());
    EXPECT_FALSE(Interval::of(-1.0, 2.0).isEmpty());
    EXPECT_DOUBLE_EQ(Interval::of(-3.0, 2.0).maxAbs(), 3.0);
    EXPECT_DOUBLE_EQ(Interval::of(-3.0, 2.0).width(), 5.0);

    const Interval h =
        Interval::of(0.0, 1.0).hull(Interval::of(4.0, 5.0));
    EXPECT_DOUBLE_EQ(h.lo, 0.0);
    EXPECT_DOUBLE_EQ(h.hi, 5.0);

    EXPECT_TRUE(Interval::of(0.0, 1.0)
                    .intersect(Interval::of(2.0, 3.0))
                    .isEmpty());
    EXPECT_TRUE(Interval::of(0.0, 2.0).contains(1.5));
    EXPECT_FALSE(Interval::empty().contains(0.0));

    const Interval s = Interval::of(-1.0, 2.0).scaled(-2.0);
    EXPECT_DOUBLE_EQ(s.lo, -4.0);
    EXPECT_DOUBLE_EQ(s.hi, 2.0);
}

TEST(DefaultRanges, CoverKnownSensorTypes)
{
    const auto ranges = defaultChannelRanges(
        {{"ACC_X", 50.0}, {"AUDIO", 4000.0}, {"BARO", 20.0},
         {"MYSTERY", 10.0}});
    ASSERT_EQ(ranges.size(), 4u);
    EXPECT_DOUBLE_EQ(ranges[0].lo, -40.0);
    EXPECT_DOUBLE_EQ(ranges[0].hi, 40.0);
    EXPECT_DOUBLE_EQ(ranges[1].lo, -1.0);
    EXPECT_DOUBLE_EQ(ranges[1].hi, 1.0);
    EXPECT_DOUBLE_EQ(ranges[2].lo, 300.0);
    EXPECT_DOUBLE_EQ(ranges[2].hi, 1100.0);
    EXPECT_LE(ranges[3].lo, -1e5);
    EXPECT_GE(ranges[3].hi, 1e5);
}

TEST(RangeDiagnostics, DeadWakeIsSw310)
{
    // rms of normalized audio is <= 1; a 2.0 floor never passes.
    const auto analysis = analyzeSource(
        "AUDIO -> window(id=1, params={64, 0, 64});\n"
        "1 -> rms(id=2);\n"
        "2 -> minThreshold(id=3, params={2.0});\n"
        "3 -> OUT;\n",
        core::audioChannels());
    EXPECT_FALSE(analysis.wakeReachable);
    EXPECT_DOUBLE_EQ(analysis.provenWakeRateHz, 0.0);
    EXPECT_TRUE(hasCode(analysis, SW310_DEAD_WAKE));
}

TEST(RangeDiagnostics, AlwaysFiringWakeIsSw311)
{
    // [-40, 40] is inside the admit set of maxThreshold(100): the
    // "condition" is a 50 Hz timer.
    const auto analysis = analyzeSource(
        "ACC_X -> movingAvg(id=1, params={4});\n"
        "1 -> maxThreshold(id=2, params={100.0});\n"
        "2 -> OUT;\n",
        kAccChannels);
    EXPECT_TRUE(analysis.wakeAlwaysFires);
    EXPECT_TRUE(hasCode(analysis, SW311_ALWAYS_WAKE));
}

TEST(RangeDiagnostics, ConsecutiveProvesTighterBound)
{
    const auto analysis = analyzeSource(
        "AUDIO -> window(id=1, params={256, 0, 256});\n"
        "1 -> rms(id=2);\n"
        "2 -> minThreshold(id=3, params={0.2});\n"
        "3 -> consecutive(id=4, params={8});\n"
        "4 -> OUT;\n",
        core::audioChannels());
    // 4000 / 256 = 15.625 Hz syntactic; consecutive(8) divides it.
    EXPECT_NEAR(analysis.provenWakeRateHz, 15.625 / 8.0, 1e-9);
    EXPECT_TRUE(hasCode(analysis, SW312_PROVEN_WAKE_RATE));
}

TEST(RangeDiagnostics, Q15SaturationIsErrorInQ15Mode)
{
    const std::string source =
        "ACC_X -> movingAvg(id=1, params={5});\n"
        "1 -> minThreshold(id=2, params={12.0});\n"
        "2 -> OUT;\n";

    const auto warn = analyzeSource(source, kAccChannels);
    const Diagnostic *sw301 = findCode(warn, SW301_Q15_SATURATION);
    ASSERT_NE(sw301, nullptr);
    EXPECT_EQ(sw301->severity, Severity::Warning);
    EXPECT_FALSE(warn.q15Provable);
    EXPECT_TRUE(hasCode(warn, SW302_Q15_PRESCALE));

    RangeOptions q15;
    q15.q15 = true;
    const auto reject = analyzeSource(source, kAccChannels, q15);
    const Diagnostic *error = findCode(reject, SW301_Q15_SATURATION);
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->severity, Severity::Error);

    // The recommended shift covers |40|: 2^-6 * 40 = 0.625 <= 1.
    const ExecutionPlan plan = lower(parse(source), kAccChannels);
    const auto facts = analyzeRanges(plan);
    ASSERT_FALSE(facts.nodes.empty());
    EXPECT_FALSE(facts.nodes[0].q15Safe);
    EXPECT_EQ(facts.nodes[0].recommendedShift, 6);
}

TEST(RangeDiagnostics, DeclaredRangesMakeTheSameProgramProvable)
{
    const std::string source =
        "ACC_X -> movingAvg(id=1, params={5});\n"
        "1 -> minThreshold(id=2, params={0.5});\n"
        "2 -> OUT;\n";
    RangeOptions options;
    options.q15 = true;
    options.channelRanges = {{"ACC_X", -0.9, 0.9}};
    const auto analysis = analyzeSource(source, kAccChannels, options);
    EXPECT_TRUE(analysis.q15Provable);
    EXPECT_FALSE(hasCode(analysis, SW301_Q15_SATURATION));
}

TEST(RangeDiagnostics, DiagnosticsCarryStatementSpans)
{
    const auto analysis = analyzeSource(
        "ACC_X -> movingAvg(id=1, params={4});\n"
        "1 -> maxThreshold(id=2, params={100.0});\n"
        "2 -> OUT;\n",
        kAccChannels);
    const Diagnostic *d = findCode(analysis, SW311_ALWAYS_WAKE);
    ASSERT_NE(d, nullptr);
    EXPECT_GE(d->line, 1);
    EXPECT_GE(d->column, 1);
}

// ---------------------------------------------------------------------
// Golden corpus: renderRanges output for every tests/data/ranges/*.il
// is pinned as <stem>.golden next to it. Stems starting with "q15_"
// are analyzed with RangeOptions::q15 set (SW301 is an error there).
// Regenerate with SW_UPDATE_GOLDENS=1.

std::filesystem::path
rangesDir()
{
    return std::filesystem::path(SW_TEST_DATA_DIR) / "ranges";
}

std::string
rangesTextFor(const std::string &source, bool q15)
{
    try {
        const ExecutionPlan plan =
            lower(parse(source), core::allChannels());
        RangeOptions options;
        options.q15 = q15;
        return renderRanges(plan, analyzeRanges(plan, options));
    } catch (const SidewinderError &error) {
        return std::string("error: ") + error.what() + "\n";
    }
}

TEST(RangeGoldens, CorpusMatchesPinnedRenderings)
{
    const bool update = std::getenv("SW_UPDATE_GOLDENS") != nullptr;

    std::vector<std::filesystem::path> files;
    for (const auto &entry :
         std::filesystem::directory_iterator(rangesDir()))
        if (entry.path().extension() == ".il")
            files.push_back(entry.path());
    std::sort(files.begin(), files.end());
    ASSERT_GE(files.size(), 6u) << "ranges corpus went missing";

    for (const auto &path : files) {
        std::ifstream in(path);
        ASSERT_TRUE(in) << path;
        std::ostringstream text;
        text << in.rdbuf();
        const bool q15 =
            path.stem().string().rfind("q15_", 0) == 0;
        const std::string actual = rangesTextFor(text.str(), q15);

        const auto golden_path =
            rangesDir() / (path.stem().string() + ".golden");
        if (update) {
            std::ofstream out(golden_path);
            ASSERT_TRUE(out) << golden_path;
            out << actual;
            continue;
        }

        std::ifstream golden(golden_path);
        ASSERT_TRUE(golden)
            << golden_path
            << " missing — regenerate with SW_UPDATE_GOLDENS=1";
        std::ostringstream expected;
        expected << golden.rdbuf();
        EXPECT_EQ(actual, expected.str()) << path.filename();
    }
}

// ---------------------------------------------------------------------
// Soundness: observed ⊆ proven, checked with the engine's tripwire.

/** Tripwire bounds per share key from a plan's range analysis. */
std::unordered_map<std::string, hub::Engine::RangeBound>
tripwireBounds(const ExecutionPlan &plan, const RangeAnalysis &facts)
{
    std::unordered_map<std::string, hub::Engine::RangeBound> bounds;
    for (std::size_t i = 0; i < plan.nodeCount(); ++i) {
        hub::Engine::RangeBound b;
        if (plan.streams[i].kind == ValueKind::ComplexFrame) {
            b.hi = facts.nodes[i].magnitudeBound;
            b.lo = -b.hi;
        } else {
            b.lo = facts.nodes[i].value.lo;
            b.hi = facts.nodes[i].value.hi;
        }
        bounds[plan.shareKeys[i]] = b;
    }
    return bounds;
}

/**
 * Drive @p plan on a fresh engine with @p waves of uniform samples
 * inside @p ranges (per engine channel) and return the tripwire
 * violation report (empty string when sound).
 */
std::string
runTripwire(const ExecutionPlan &plan, const RangeAnalysis &facts,
            const std::vector<ChannelInfo> &channels,
            std::size_t waves, Rng &rng)
{
    hub::Engine engine(channels);
    engine.addCondition(1, plan);
    engine.armRangeTripwire(tripwireBounds(plan, facts));

    std::vector<double> sample(channels.size());
    const double dt = 1.0 / channels.front().sampleRateHz;
    for (std::size_t w = 0; w < waves; ++w) {
        for (std::size_t c = 0; c < channels.size(); ++c)
            sample[c] = rng.uniform(facts.channelRanges[c].lo,
                                    facts.channelRanges[c].hi);
        engine.pushSamples(sample, static_cast<double>(w) * dt);
    }
    if (engine.rangeTripwireViolations() == 0)
        return "";
    return engine.rangeTripwireFirstViolation() + " (" +
           std::to_string(engine.rangeTripwireViolations()) +
           " violations)";
}

TEST(RangeSoundness, BuiltinAppsObservedWithinProven)
{
    Rng rng(20260807);
    std::vector<std::pair<std::string, const apps::Application *>>
        units;
    const auto all = apps::allApps();
    for (const auto &app : all)
        units.emplace_back(app->name(), app.get());
    const auto gesture = apps::makeGestureApp();
    const auto floors = apps::makeFloorsApp();
    units.emplace_back(gesture->name(), gesture.get());
    units.emplace_back(floors->name(), floors.get());

    for (const auto &[name, app] : units) {
        const auto channels = app->channels();
        const ExecutionPlan plan = lower(
            optimize(app->wakeCondition().compile()), channels);
        const auto facts = analyzeRanges(plan);
        // ~4 seconds of stream per app, at least a few thousand
        // waves so windowed nodes emit many frames.
        const std::size_t waves = std::max<std::size_t>(
            2000, static_cast<std::size_t>(
                      4.0 * channels.front().sampleRateHz));
        const std::string verdict =
            runTripwire(plan, facts, channels, waves, rng);
        EXPECT_EQ(verdict, "") << "app " << name;
    }
}

/**
 * Random valid program over the accelerometer channels: scalar
 * chains (averages, thresholds), windowed reducer branches, an
 * optional aggregation, a terminal threshold, and an optional
 * consecutive debounce.
 */
Program
randomProgram(Rng &rng, double magnitude)
{
    Program program;
    NodeId next_id = 1;
    std::vector<NodeId> tails;

    const long branch_count = rng.uniformInt(1, 3);
    for (long b = 0; b < branch_count; ++b) {
        const char *names[] = {"ACC_X", "ACC_Y", "ACC_Z"};
        SourceRef current =
            SourceRef::makeChannel(names[rng.uniformInt(0, 2)]);
        const long depth = rng.uniformInt(1, 3);
        for (long d = 0; d < depth; ++d) {
            Statement stmt;
            stmt.inputs = {current};
            stmt.id = next_id++;
            switch (rng.uniformInt(0, 3)) {
              case 0:
                stmt.algorithm = "movingAvg";
                stmt.params = {
                    static_cast<double>(rng.uniformInt(2, 12))};
                break;
              case 1:
                stmt.algorithm = "expMovingAvg";
                stmt.params = {rng.uniform(0.05, 1.0)};
                break;
              case 2: {
                // window -> reducer collapses back to a scalar.
                const long sizes[] = {4, 8, 16};
                const double n = static_cast<double>(
                    sizes[rng.uniformInt(0, 2)]);
                stmt.algorithm = "window";
                stmt.params = {
                    n, static_cast<double>(rng.uniformInt(0, 1)), n};
                const NodeId window_id = stmt.id;
                program.statements.push_back(std::move(stmt));

                Statement reduce;
                reduce.inputs = {SourceRef::makeNode(window_id)};
                reduce.id = next_id++;
                const char *reducers[] = {"mean", "stddev", "rms",
                                          "min",  "max",    "range",
                                          "variance"};
                reduce.algorithm = reducers[rng.uniformInt(0, 6)];
                current = SourceRef::makeNode(reduce.id);
                program.statements.push_back(std::move(reduce));
                continue;
              }
              default:
                stmt.algorithm = "maxThreshold";
                stmt.params = {rng.uniform(0.0, magnitude)};
                break;
            }
            current = SourceRef::makeNode(stmt.id);
            program.statements.push_back(std::move(stmt));
        }
        tails.push_back(current.node);
    }

    if (tails.size() > 1) {
        Statement agg;
        for (NodeId tail : tails)
            agg.inputs.push_back(SourceRef::makeNode(tail));
        agg.algorithm = "vectorMagnitude";
        agg.id = next_id++;
        program.statements.push_back(agg);
        tails = {agg.id};
    }

    Statement thr;
    thr.inputs = {SourceRef::makeNode(tails[0])};
    thr.algorithm = "minThreshold";
    thr.id = next_id++;
    thr.params = {rng.uniform(0.0, magnitude / 2.0)};
    program.statements.push_back(thr);
    NodeId last = thr.id;

    if (rng.uniformInt(0, 2) == 0) {
        Statement debounce;
        debounce.inputs = {SourceRef::makeNode(last)};
        debounce.algorithm = "consecutive";
        debounce.id = next_id++;
        debounce.params = {
            static_cast<double>(rng.uniformInt(2, 5))};
        last = debounce.id;
        program.statements.push_back(std::move(debounce));
    }

    Statement out;
    out.inputs = {SourceRef::makeNode(last)};
    out.isOut = true;
    program.statements.push_back(out);
    return program;
}

TEST(RangeSoundness, FuzzedProgramsObservedWithinProven)
{
    Rng rng(424242);
    const double magnitudes[] = {0.5, 0.9, 4.0, 40.0};
    int q15_checked = 0;

    for (int i = 0; i < 32; ++i) {
        const double magnitude =
            magnitudes[static_cast<std::size_t>(i) % 4];
        const Program program = randomProgram(rng, magnitude);

        RangeOptions options;
        for (const auto &ch : kAccChannels)
            options.channelRanges.push_back(
                {ch.name, -magnitude, magnitude});

        const ExecutionPlan plan = lower(program, kAccChannels);
        const auto facts = analyzeRanges(plan, options);
        const std::string verdict =
            runTripwire(plan, facts, kAccChannels, 1500, rng);
        EXPECT_EQ(verdict, "") << "fuzz #" << i << " (magnitude "
                               << magnitude << ")";

        // A program the analyzer proves Q15-safe must execute in
        // fixed point with zero saturation events.
        if (facts.q15Provable) {
            ++q15_checked;
            hub::Engine q15(kAccChannels, true, 200,
                            hub::KernelMode::FixedQ15);
            q15.addCondition(1, plan);
            hub::Engine::resetQ15SaturationEvents();
            std::vector<double> sample(kAccChannels.size());
            for (int w = 0; w < 1500; ++w) {
                for (std::size_t c = 0; c < sample.size(); ++c)
                    sample[c] = rng.uniform(-magnitude, magnitude);
                q15.pushSamples(sample, w * 0.02);
            }
            EXPECT_EQ(hub::Engine::q15SaturationEvents(), 0u)
                << "fuzz #" << i << " proven safe but saturated";
        }
    }
    // The small-magnitude draws must actually exercise the Q15 leg.
    EXPECT_GE(q15_checked, 4);
}

TEST(RangeSoundness, UnprovableProgramActuallySaturates)
{
#if !SIDEWINDER_Q15_COUNTERS_ENABLED
    GTEST_SKIP() << "saturation counters compiled out (Release)";
#else
    // ±40 m/s² accelerometer data through a movingAvg quantizes far
    // outside the Q15 grid: SW301 fires, and the empirical counter
    // agrees (this is the other half of the soundness argument —
    // the warning is not a false alarm on real full-range data).
    const std::string source =
        "ACC_X -> movingAvg(id=1, params={5});\n"
        "1 -> minThreshold(id=2, params={12.0});\n"
        "2 -> OUT;\n";
    const ExecutionPlan plan = lower(parse(source), kAccChannels);
    const auto facts = analyzeRanges(plan);
    EXPECT_FALSE(facts.q15Provable);

    hub::Engine q15(kAccChannels, true, 200,
                    hub::KernelMode::FixedQ15);
    q15.addCondition(1, plan);
    hub::Engine::resetQ15SaturationEvents();
    Rng rng(7);
    std::vector<double> sample(kAccChannels.size());
    for (int w = 0; w < 500; ++w) {
        for (std::size_t c = 0; c < sample.size(); ++c)
            sample[c] = rng.uniform(-40.0, 40.0);
        q15.pushSamples(sample, w * 0.02);
    }
    EXPECT_GT(hub::Engine::q15SaturationEvents(), 0u);
#endif
}

TEST(RangeSoundness, TripwireCatchesAnUnsoundBound)
{
    // Arm a deliberately false bound: the tripwire must report it
    // (guards against the tripwire silently passing everything).
    const std::string source =
        "ACC_X -> movingAvg(id=1, params={2});\n"
        "1 -> maxThreshold(id=2, params={100.0});\n"
        "2 -> OUT;\n";
    const ExecutionPlan plan = lower(parse(source), kAccChannels);

    std::unordered_map<std::string, hub::Engine::RangeBound> bogus;
    for (std::size_t i = 0; i < plan.nodeCount(); ++i)
        bogus[plan.shareKeys[i]] = {-0.001, 0.001};

    hub::Engine engine(kAccChannels);
    engine.addCondition(1, plan);
    engine.armRangeTripwire(bogus);
    for (int w = 0; w < 50; ++w)
        engine.pushSamples({30.0, 0.0, 0.0}, w * 0.02);
    EXPECT_GT(engine.rangeTripwireViolations(), 0u);
    EXPECT_FALSE(engine.rangeTripwireFirstViolation().empty());

    engine.disarmRangeTripwire();
    const std::size_t before = engine.rangeTripwireViolations();
    for (int w = 50; w < 60; ++w)
        engine.pushSamples({30.0, 0.0, 0.0}, w * 0.02);
    EXPECT_EQ(engine.rangeTripwireViolations(), before);
}

} // namespace
} // namespace sidewinder::il
