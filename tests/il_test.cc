/**
 * @file
 * Unit tests for the intermediate language: writer output (Figure 2c
 * of the paper), lexer/parser round trips, and the validator.
 */

#include <gtest/gtest.h>

#include "il/algorithm_info.h"
#include "il/ast.h"
#include "il/dot.h"
#include "il/lexer.h"
#include "il/parser.h"
#include "il/validate.h"
#include "il/writer.h"
#include "support/error.h"

namespace sidewinder::il {
namespace {

/** The significant-motion program of Figure 2 of the paper. */
Program
significantMotionProgram()
{
    Program p;
    for (int axis = 0; axis < 3; ++axis) {
        Statement s;
        const char *names[] = {"ACC_X", "ACC_Y", "ACC_Z"};
        s.inputs = {SourceRef::makeChannel(names[axis])};
        s.algorithm = "movingAvg";
        s.id = axis + 1;
        s.params = {10.0};
        p.statements.push_back(s);
    }
    Statement vm;
    vm.inputs = {SourceRef::makeNode(1), SourceRef::makeNode(2),
                 SourceRef::makeNode(3)};
    vm.algorithm = "vectorMagnitude";
    vm.id = 4;
    p.statements.push_back(vm);

    Statement thr;
    thr.inputs = {SourceRef::makeNode(4)};
    thr.algorithm = "minThreshold";
    thr.id = 5;
    thr.params = {15.0};
    p.statements.push_back(thr);

    Statement out;
    out.inputs = {SourceRef::makeNode(5)};
    out.isOut = true;
    p.statements.push_back(out);
    return p;
}

std::vector<ChannelInfo>
accelChannels()
{
    return {{"ACC_X", 50.0}, {"ACC_Y", 50.0}, {"ACC_Z", 50.0}};
}

TEST(Writer, MatchesFigure2c)
{
    const std::string expected =
        "ACC_X -> movingAvg(id=1, params={10});\n"
        "ACC_Y -> movingAvg(id=2, params={10});\n"
        "ACC_Z -> movingAvg(id=3, params={10});\n"
        "1,2,3 -> vectorMagnitude(id=4);\n"
        "4 -> minThreshold(id=5, params={15});\n"
        "5 -> OUT;\n";
    EXPECT_EQ(write(significantMotionProgram()), expected);
}

TEST(Writer, ParamFormatting)
{
    EXPECT_EQ(writeParam(10.0), "10");
    EXPECT_EQ(writeParam(-3.0), "-3");
    EXPECT_EQ(writeParam(0.25), "0.25");
}

TEST(Writer, StatementWithoutInputsThrows)
{
    Statement s;
    s.algorithm = "movingAvg";
    s.id = 1;
    EXPECT_THROW(writeStatement(s), ConfigError);
}

TEST(Parser, RoundTripsFigure2c)
{
    const Program original = significantMotionProgram();
    EXPECT_EQ(parse(write(original)), original);
}

TEST(Parser, HandlesCommentsAndWhitespace)
{
    const Program p = parse("# a comment\n"
                            "  ACC_X -> movingAvg(id=1, params={10});\n"
                            "\t1 -> OUT; # trailing\n");
    ASSERT_EQ(p.statements.size(), 2u);
    EXPECT_EQ(p.statements[0].algorithm, "movingAvg");
    EXPECT_TRUE(p.statements[1].isOut);
}

TEST(Parser, ParsesFloatAndNegativeParams)
{
    const Program p = parse(
        "ACC_Y -> bandThreshold(id=1, params={-6.75,-3.75});\n"
        "1 -> OUT;\n");
    ASSERT_EQ(p.statements[0].params.size(), 2u);
    EXPECT_DOUBLE_EQ(p.statements[0].params[0], -6.75);
    EXPECT_DOUBLE_EQ(p.statements[0].params[1], -3.75);
}

TEST(Parser, ParsesEmptyParamList)
{
    const Program p =
        parse("ACC_X -> movingAvg(id=1, params={});\n1 -> OUT;\n");
    EXPECT_TRUE(p.statements[0].params.empty());
}

TEST(Parser, ErrorsCarryLocation)
{
    try {
        parse("ACC_X -> movingAvg(id=1, params={10})\n1 -> OUT;\n");
        FAIL() << "expected ParseError";
    } catch (const ParseError &e) {
        EXPECT_NE(std::string(e.what()).find("1:"), std::string::npos);
    }
}

TEST(Parser, RejectsGarbage)
{
    EXPECT_THROW(parse("@@@"), ParseError);
    EXPECT_THROW(parse("ACC_X ->"), ParseError);
    EXPECT_THROW(parse("ACC_X -> movingAvg(identity=1);\n"),
                 ParseError);
    EXPECT_THROW(parse("-> movingAvg(id=1);\n"), ParseError);
}

TEST(Lexer, ArrowVersusMinus)
{
    const auto tokens = lex("1 -> x(-2)");
    EXPECT_EQ(tokens[0].type, TokenType::Number);
    EXPECT_EQ(tokens[1].type, TokenType::Arrow);
    EXPECT_EQ(tokens[2].type, TokenType::Identifier);
    EXPECT_EQ(tokens[4].type, TokenType::Number);
    EXPECT_EQ(tokens[4].text, "-2");
}

TEST(Validate, AcceptsFigure2c)
{
    const auto streams =
        validate(significantMotionProgram(), accelChannels());
    EXPECT_EQ(streams.size(), 5u);
    EXPECT_EQ(streams.at(1).kind, ValueKind::Scalar);
    EXPECT_DOUBLE_EQ(streams.at(4).fireRateHz, 50.0);
}

TEST(Validate, RejectsEmptyProgram)
{
    EXPECT_THROW(validate(Program{}, accelChannels()), ParseError);
}

TEST(Validate, RejectsUnknownChannel)
{
    EXPECT_THROW(
        validate(parse("GYRO_X -> movingAvg(id=1, params={10});\n"
                       "1 -> OUT;\n"),
                 accelChannels()),
        ParseError);
}

TEST(Validate, RejectsUnknownAlgorithm)
{
    EXPECT_THROW(
        validate(parse("ACC_X -> quantumSort(id=1);\n1 -> OUT;\n"),
                 accelChannels()),
        ParseError);
}

TEST(Validate, RejectsForwardReference)
{
    EXPECT_THROW(
        validate(parse("2 -> movingAvg(id=1, params={10});\n"
                       "ACC_X -> movingAvg(id=2, params={10});\n"
                       "1 -> OUT;\n"),
                 accelChannels()),
        ParseError);
}

TEST(Validate, RejectsDuplicateIds)
{
    EXPECT_THROW(
        validate(parse("ACC_X -> movingAvg(id=1, params={10});\n"
                       "ACC_Y -> movingAvg(id=1, params={10});\n"
                       "1 -> OUT;\n"),
                 accelChannels()),
        ParseError);
}

TEST(Validate, RejectsMissingOut)
{
    EXPECT_THROW(
        validate(parse("ACC_X -> movingAvg(id=1, params={10});\n"),
                 accelChannels()),
        ParseError);
}

TEST(Validate, RejectsDanglingNode)
{
    EXPECT_THROW(
        validate(parse("ACC_X -> movingAvg(id=1, params={10});\n"
                       "ACC_Y -> movingAvg(id=2, params={10});\n"
                       "1 -> OUT;\n"),
                 accelChannels()),
        ParseError);
}

TEST(Validate, RejectsStatementsAfterOut)
{
    EXPECT_THROW(
        validate(parse("ACC_X -> movingAvg(id=1, params={10});\n"
                       "1 -> OUT;\n"
                       "ACC_Y -> movingAvg(id=2, params={10});\n"),
                 accelChannels()),
        ParseError);
}

TEST(Validate, RejectsKindMismatch)
{
    // fft needs a frame input, not a raw scalar channel.
    EXPECT_THROW(validate(parse("ACC_X -> fft(id=1);\n1 -> OUT;\n"),
                          accelChannels()),
                 ParseError);
}

TEST(Validate, RejectsNonPowerOfTwoFft)
{
    EXPECT_THROW(
        validate(parse("ACC_X -> window(id=1, params={100});\n"
                       "1 -> fft(id=2);\n"
                       "2 -> spectrum(id=3);\n"
                       "3 -> mean(id=4);\n"
                       "4 -> OUT;\n"),
                 accelChannels()),
        ParseError);
}

TEST(Validate, RejectsCutoffAboveNyquist)
{
    EXPECT_THROW(
        validate(parse("ACC_X -> window(id=1, params={32});\n"
                       "1 -> lowPass(id=2, params={30});\n"
                       "2 -> mean(id=3);\n"
                       "3 -> OUT;\n"),
                 accelChannels()),
        ParseError);
}

TEST(Validate, WindowChangesRateAndFrameSize)
{
    const auto streams = validate(
        parse("ACC_X -> window(id=1, params={32,0,16});\n"
              "1 -> mean(id=2);\n"
              "2 -> OUT;\n"),
        accelChannels());
    EXPECT_EQ(streams.at(1).kind, ValueKind::Frame);
    EXPECT_EQ(streams.at(1).frameSize, 32u);
    EXPECT_DOUBLE_EQ(streams.at(1).fireRateHz, 50.0 / 16.0);
    EXPECT_DOUBLE_EQ(streams.at(1).baseRateHz, 50.0);
    EXPECT_EQ(streams.at(2).kind, ValueKind::Scalar);
    EXPECT_EQ(streams.at(2).frameSize, 0u);
}

TEST(Validate, SpectralChainCarriesFftSize)
{
    const auto streams = validate(
        parse("AUDIO -> window(id=1, params={256});\n"
              "1 -> fft(id=2);\n"
              "2 -> spectrum(id=3);\n"
              "3 -> dominantFreqHz(id=4);\n"
              "4 -> OUT;\n"),
        {{"AUDIO", 4000.0}});
    EXPECT_EQ(streams.at(2).fftSize, 256u);
    EXPECT_EQ(streams.at(3).frameSize, 129u);
}

TEST(Validate, RejectsSpectralFeatureWithoutFft)
{
    EXPECT_THROW(
        validate(parse("AUDIO -> window(id=1, params={256});\n"
                       "1 -> dominantFreqHz(id=2);\n"
                       "2 -> OUT;\n"),
                 {{"AUDIO", 4000.0}}),
        ParseError);
}

TEST(AlgorithmInfo, TableIsConsistent)
{
    for (const auto &info : standardAlgorithms()) {
        EXPECT_FALSE(info.name.empty());
        EXPECT_GE(info.maxInputs, info.minInputs);
        EXPECT_GE(info.maxParams, info.minParams);
        EXPECT_GT(info.cyclesPerUnit, 0.0) << info.name;
        EXPECT_TRUE(isKnownAlgorithm(info.name));
    }
    EXPECT_FALSE(isKnownAlgorithm("quantumSort"));
}



TEST(Ast, MaxNodeId)
{
    EXPECT_EQ(maxNodeId(Program{}), 0);
    EXPECT_EQ(maxNodeId(significantMotionProgram()), 5);
}

TEST(Dot, RendersChannelsNodesAndOut)
{
    const std::string dot = toDot(significantMotionProgram(), "sm");
    EXPECT_NE(dot.find("digraph sm {"), std::string::npos);
    EXPECT_NE(dot.find("label=\"ACC_X\""), std::string::npos);
    EXPECT_NE(dot.find("label=\"movingAvg(10)\""), std::string::npos);
    EXPECT_NE(dot.find("label=\"vectorMagnitude\""),
              std::string::npos);
    EXPECT_NE(dot.find("label=\"minThreshold(15)\""),
              std::string::npos);
    EXPECT_NE(dot.find("OUT [shape=doublecircle]"), std::string::npos);
    EXPECT_NE(dot.find("n5 -> OUT;"), std::string::npos);
    EXPECT_NE(dot.find("n1 -> n4;"), std::string::npos);
}

TEST(Dot, IsDeterministic)
{
    EXPECT_EQ(toDot(significantMotionProgram()),
              toDot(significantMotionProgram()));
}

} // namespace
} // namespace sidewinder::il
