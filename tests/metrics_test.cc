/**
 * @file
 * Unit tests for detection matching and savings metrics.
 */

#include <gtest/gtest.h>

#include "metrics/events.h"
#include "support/error.h"

namespace sidewinder::metrics {
namespace {

using trace::GroundTruthEvent;

std::vector<GroundTruthEvent>
twoEvents()
{
    return {{"e", 1.0, 1.2}, {"e", 5.0, 5.2}};
}

TEST(Match, PerfectDetection)
{
    const auto r = matchEvents(twoEvents(), {1.1, 5.1}, 0.1);
    EXPECT_EQ(r.truePositives, 2u);
    EXPECT_EQ(r.falsePositives, 0u);
    EXPECT_EQ(r.falseNegatives, 0u);
    EXPECT_DOUBLE_EQ(r.recall(), 1.0);
    EXPECT_DOUBLE_EQ(r.precision(), 1.0);
}

TEST(Match, MissedEventCountsFalseNegative)
{
    const auto r = matchEvents(twoEvents(), {1.1}, 0.1);
    EXPECT_EQ(r.truePositives, 1u);
    EXPECT_EQ(r.falseNegatives, 1u);
    EXPECT_DOUBLE_EQ(r.recall(), 0.5);
}

TEST(Match, SpuriousDetectionCountsFalsePositive)
{
    const auto r = matchEvents(twoEvents(), {1.1, 3.0, 5.1}, 0.1);
    EXPECT_EQ(r.falsePositives, 1u);
    EXPECT_DOUBLE_EQ(r.precision(), 2.0 / 3.0);
}

TEST(Match, ToleranceWidensAcceptance)
{
    EXPECT_EQ(matchEvents(twoEvents(), {0.5}, 0.1).truePositives, 0u);
    EXPECT_EQ(matchEvents(twoEvents(), {0.5}, 0.6).truePositives, 1u);
}

TEST(Match, NegativeToleranceThrows)
{
    EXPECT_THROW(matchEvents(twoEvents(), {}, -1.0), ConfigError);
}

TEST(Match, DoubleCountingPenalizedUncoalesced)
{
    const auto r = matchEvents(twoEvents(), {1.05, 1.1, 5.1}, 0.1);
    EXPECT_EQ(r.truePositives, 2u);
    EXPECT_EQ(r.falsePositives, 1u);
}

TEST(Match, CoalescedIgnoresRepeatsInsideEvent)
{
    const auto r =
        matchEventsCoalesced(twoEvents(), {1.05, 1.1, 1.15, 5.1}, 0.1);
    EXPECT_EQ(r.truePositives, 2u);
    EXPECT_EQ(r.falsePositives, 0u);
}

TEST(Match, EmptyTruthAndDetections)
{
    const auto r = matchEvents({}, {}, 0.1);
    EXPECT_DOUBLE_EQ(r.recall(), 1.0);
    EXPECT_DOUBLE_EQ(r.precision(), 1.0);
}

TEST(Match, UnsortedDetectionsHandled)
{
    const auto r = matchEvents(twoEvents(), {5.1, 1.1}, 0.1);
    EXPECT_EQ(r.truePositives, 2u);
}

TEST(Savings, PaperFormula)
{
    // (AA - X) / (AA - Oracle), Section 5.2.
    EXPECT_DOUBLE_EQ(savingsFraction(323.0, 323.0, 16.8), 0.0);
    EXPECT_DOUBLE_EQ(savingsFraction(323.0, 16.8, 16.8), 1.0);
    EXPECT_NEAR(savingsFraction(323.0, 47.4, 16.8), 0.9, 1e-3);
}

TEST(Savings, DegenerateDenominator)
{
    EXPECT_DOUBLE_EQ(savingsFraction(100.0, 50.0, 100.0), 0.0);
}

} // namespace
} // namespace sidewinder::metrics
