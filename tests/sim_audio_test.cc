/**
 * @file
 * Simulator orderings on the audio domain (the Table 2 relationships
 * of the paper, at test scale): Oracle <= Sidewinder << Always Awake,
 * PA beats Sidewinder for the common loud event (sirens need the big
 * MCU) but loses for selective conditions, and the phrase detector's
 * wake-on-speech suboptimality stays within the bound of §5.2.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "metrics/events.h"
#include "sim/calibrate.h"
#include "sim/simulator.h"
#include "trace/audio_gen.h"

namespace sidewinder::sim {
namespace {

trace::Trace
audioTrace(std::uint64_t seed = 42)
{
    trace::AudioTraceConfig config;
    config.environment = trace::AudioEnvironment::Office;
    config.durationSeconds = 300.0;
    config.seed = seed;
    config.phraseProbability = 0.5;
    return trace::generateAudioTrace(config);
}

SimResult
run(const trace::Trace &t, const apps::Application &app,
    Strategy strategy)
{
    SimConfig config;
    config.strategy = strategy;
    return simulate(t, app, config);
}

TEST(SimAudio, SirenUsesTheBigMcuAndKeepsRecall)
{
    const auto app = apps::makeSirenApp();
    const auto trace = audioTrace();
    const auto sw = run(trace, *app, Strategy::Sidewinder);
    EXPECT_EQ(sw.mcuName, "LM4F120");
    EXPECT_DOUBLE_EQ(sw.recall, 1.0);
    // The LM4F120 floor: Sidewinder can never drop below hub power
    // plus sleeping phone.
    EXPECT_GE(sw.averagePowerMw, 49.4 + 9.7);
    EXPECT_LT(sw.averagePowerMw, 323.0 / 2.0);
}

TEST(SimAudio, MusicAndPhraseStayOnTheSmallMcu)
{
    const auto trace = audioTrace();
    for (auto make : {apps::makeMusicJournalApp, apps::makePhraseApp}) {
        const auto app = make();
        const auto sw = run(trace, *app, Strategy::Sidewinder);
        EXPECT_EQ(sw.mcuName, "MSP430") << app->name();
        EXPECT_DOUBLE_EQ(sw.recall, 1.0) << app->name();
    }
}

TEST(SimAudio, OracleIsTheFloor)
{
    const auto trace = audioTrace();
    for (const auto &app : apps::audioApps()) {
        const auto oracle = run(trace, *app, Strategy::Oracle);
        const auto sw = run(trace, *app, Strategy::Sidewinder);
        EXPECT_GE(sw.averagePowerMw, oracle.averagePowerMw)
            << app->name();
    }
}

TEST(SimAudio, PhraseWakesOnSpeechYetSavesMostPower)
{
    // §5.2: the wake condition fires for every speech segment (~5% of
    // the trace) though the phrase is rarer; even so Sidewinder
    // achieves ~90% of the possible saving.
    const auto app = apps::makePhraseApp();
    const auto trace = audioTrace();
    const auto sw = run(trace, *app, Strategy::Sidewinder);
    const auto oracle = run(trace, *app, Strategy::Oracle);

    const auto speech = trace.eventsOfType(trace::event_type::speech);
    const auto phrases = trace.eventsOfType(trace::event_type::phrase);
    ASSERT_GT(speech.size(), phrases.size());
    // More hub triggers than phrases: the suboptimality is real...
    EXPECT_GT(sw.hubTriggerCount, phrases.size());
    // ...yet the savings share still clears the paper's ~90% bar.
    EXPECT_GE(metrics::savingsFraction(323.0, sw.averagePowerMw,
                                       oracle.averagePowerMw),
              0.88);
}

TEST(SimAudio, PredefinedActivityCheaperOnlyForSiren)
{
    // §5.3 on audio: with the paper's over-fit threshold calibration,
    // PA beat Sidewinder for sirens (which carry the LM4F120 cost)
    // but lost for the more selective phrase condition.
    const std::vector<trace::Trace> traces = {audioTrace()};
    const std::vector<double> candidates = {0.05, 0.07, 0.09,
                                            0.12, 0.16, 0.22};

    const auto siren = apps::makeSirenApp();
    const auto siren_cal =
        calibratePredefinedThreshold(traces, *siren, candidates);
    EXPECT_TRUE(siren_cal.achievedFullRecall);
    const double sw_siren =
        run(traces[0], *siren, Strategy::Sidewinder).averagePowerMw;
    EXPECT_LT(siren_cal.averagePowerMw, sw_siren);

    const auto phrase = apps::makePhraseApp();
    const auto phrase_cal =
        calibratePredefinedThreshold(traces, *phrase, candidates);
    const double sw_phrase =
        run(traces[0], *phrase, Strategy::Sidewinder).averagePowerMw;
    EXPECT_GT(phrase_cal.averagePowerMw, sw_phrase);
}

TEST(SimAudio, DutyCyclingMissesShortSirens)
{
    const auto app = apps::makeSirenApp();
    const auto trace = audioTrace(7);
    SimConfig config;
    config.strategy = Strategy::DutyCycling;
    config.sleepIntervalSeconds = 30.0;
    const auto dc = simulate(trace, *app, config);
    EXPECT_LT(dc.recall, 1.0);
}

} // namespace
} // namespace sidewinder::sim
