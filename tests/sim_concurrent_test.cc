/**
 * @file
 * Tests for concurrent multi-application simulation (Section 7):
 * every app keeps full recall on the shared hub, the combined power
 * is below the sum of solo deployments, and node sharing reduces the
 * hub's footprint without changing detections.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "sim/concurrent.h"
#include "sim/simulator.h"
#include "support/error.h"
#include "trace/audio_gen.h"
#include "trace/robot_gen.h"

namespace sidewinder::sim {
namespace {

trace::Trace
robotTrace(std::uint64_t seed = 42)
{
    trace::RobotRunConfig config;
    config.idleFraction = 0.5;
    config.durationSeconds = 180.0;
    config.seed = seed;
    return trace::generateRobotRun(config);
}

TEST(Concurrent, RejectsEmptyAppList)
{
    std::vector<std::unique_ptr<apps::Application>> none;
    EXPECT_THROW(simulateConcurrent(robotTrace(), none), ConfigError);
}

TEST(Concurrent, RejectsMixedChannelSets)
{
    std::vector<std::unique_ptr<apps::Application>> mixed;
    mixed.push_back(apps::makeStepsApp());
    mixed.push_back(apps::makeSirenApp());
    // The trace does not matter; channel validation comes first.
    EXPECT_THROW(simulateConcurrent(robotTrace(), mixed), ConfigError);
}

TEST(Concurrent, AllAccelAppsKeepFullRecall)
{
    const auto trace = robotTrace();
    const auto result =
        simulateConcurrent(trace, apps::accelerometerApps());

    ASSERT_EQ(result.apps.size(), 3u);
    for (const auto &app : result.apps) {
        EXPECT_DOUBLE_EQ(app.recall, 1.0) << app.appName;
        EXPECT_GE(app.precision, 0.9) << app.appName;
    }
    EXPECT_EQ(result.mcuName, "MSP430");
}

TEST(Concurrent, CombinedPowerBelowSumOfSoloDeployments)
{
    // Three separate phones each running one app would each pay for
    // their own wake-ups; one phone running all three pays once for
    // overlapping awake windows, plus a single hub.
    const auto trace = robotTrace();
    const auto combined =
        simulateConcurrent(trace, apps::accelerometerApps());

    double solo_sum = 0.0;
    SimConfig config;
    config.strategy = Strategy::Sidewinder;
    for (const auto &app : apps::accelerometerApps())
        solo_sum += simulate(trace, *app, config).averagePowerMw;

    EXPECT_LT(combined.averagePowerMw, solo_sum);
    // And it cannot be cheaper than the most demanding single app.
    double solo_max = 0.0;
    for (const auto &app : apps::accelerometerApps())
        solo_max = std::max(
            solo_max, simulate(trace, *app, config).averagePowerMw);
    EXPECT_GE(combined.averagePowerMw, solo_max - 1.0);
}

TEST(Concurrent, SharingShrinksTheHubNotTheDetections)
{
    const auto trace = robotTrace(7);

    SimConfig shared_config;
    shared_config.shareHubNodes = true;
    const auto shared = simulateConcurrent(
        trace, apps::accelerometerApps(), shared_config);

    SimConfig unshared_config;
    unshared_config.shareHubNodes = false;
    const auto unshared = simulateConcurrent(
        trace, apps::accelerometerApps(), unshared_config);

    EXPECT_LE(shared.hubNodeCount, unshared.hubNodeCount);
    EXPECT_LE(shared.hubCyclesPerSecond,
              unshared.hubCyclesPerSecond);

    ASSERT_EQ(shared.apps.size(), unshared.apps.size());
    for (std::size_t i = 0; i < shared.apps.size(); ++i) {
        EXPECT_EQ(shared.apps[i].hubTriggerCount,
                  unshared.apps[i].hubTriggerCount)
            << shared.apps[i].appName;
        EXPECT_DOUBLE_EQ(shared.apps[i].recall,
                         unshared.apps[i].recall);
    }
    EXPECT_DOUBLE_EQ(shared.averagePowerMw, unshared.averagePowerMw);
}

TEST(Concurrent, AudioAppsShareTheLm4f120)
{
    trace::AudioTraceConfig config;
    config.durationSeconds = 150.0;
    config.seed = 5;
    const auto trace = trace::generateAudioTrace(config);

    const auto result =
        simulateConcurrent(trace, apps::audioApps());
    // The siren condition forces the big MCU for the whole hub.
    EXPECT_EQ(result.mcuName, "LM4F120");
    for (const auto &app : result.apps)
        EXPECT_DOUBLE_EQ(app.recall, 1.0) << app.appName;
}

} // namespace
} // namespace sidewinder::sim
