/**
 * @file
 * Tests for the multi-hub device simulation: one phone, an
 * accelerometer hub and an audio hub (Section 2.1.1's heterogeneous
 * sizing options), all applications at full recall, and sane power
 * composition.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "sim/concurrent.h"
#include "support/error.h"
#include "trace/audio_gen.h"
#include "trace/robot_gen.h"

namespace sidewinder::sim {
namespace {

trace::Trace
accelTrace(double seconds)
{
    trace::RobotRunConfig config;
    config.idleFraction = 0.5;
    config.durationSeconds = seconds;
    config.seed = 42;
    return trace::generateRobotRun(config);
}

trace::Trace
audioTrace(double seconds)
{
    trace::AudioTraceConfig config;
    config.durationSeconds = seconds;
    config.seed = 42;
    return trace::generateAudioTrace(config);
}

TEST(Device, RejectsBadInput)
{
    EXPECT_THROW(simulateDevice({}), ConfigError);

    const auto accel = accelTrace(60.0);
    std::vector<std::unique_ptr<apps::Application>> none;
    DeviceDomain empty{&accel, &none};
    EXPECT_THROW(simulateDevice({empty}), ConfigError);

    // Mismatched durations.
    const auto audio = audioTrace(200.0);
    const auto accel_apps = apps::accelerometerApps();
    const auto audio_apps = apps::audioApps();
    DeviceDomain a{&accel, &accel_apps};
    DeviceDomain b{&audio, &audio_apps};
    EXPECT_THROW(simulateDevice({a, b}), ConfigError);
}

TEST(Device, TwoHubsAllAppsFullRecall)
{
    const double seconds = 200.0;
    const auto accel = accelTrace(seconds);
    const auto audio = audioTrace(seconds);
    const auto accel_apps = apps::accelerometerApps();
    const auto audio_apps = apps::audioApps();

    const auto result = simulateDevice(
        {DeviceDomain{&accel, &accel_apps},
         DeviceDomain{&audio, &audio_apps}});

    ASSERT_EQ(result.domains.size(), 2u);
    // The accelerometer hub stays on the MSP430; the audio domain
    // needs the LM4F120 (siren FFTs).
    EXPECT_EQ(result.domains[0].mcuName, "MSP430");
    EXPECT_EQ(result.domains[1].mcuName, "LM4F120");
    EXPECT_NEAR(result.totalHubMw, 3.6 + 49.4, 1e-9);

    for (const auto &domain : result.domains)
        for (const auto &app : domain.apps)
            EXPECT_DOUBLE_EQ(app.recall, 1.0) << app.appName;

    // Both hubs always on, phone mostly asleep: the total sits well
    // below Always Awake yet above the hub floor.
    EXPECT_GT(result.averagePowerMw, result.totalHubMw + 9.7);
    EXPECT_LT(result.averagePowerMw, 323.0);
}

TEST(Device, SingleDomainMatchesConcurrentPower)
{
    const auto accel = accelTrace(150.0);
    const auto accel_apps = apps::accelerometerApps();

    const auto device =
        simulateDevice({DeviceDomain{&accel, &accel_apps}});
    const auto concurrent =
        simulateConcurrent(accel, apps::accelerometerApps());

    EXPECT_NEAR(device.averagePowerMw, concurrent.averagePowerMw,
                1e-9);
}

} // namespace
} // namespace sidewinder::sim
