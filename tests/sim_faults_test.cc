/**
 * @file
 * Tests for the fault-injection harness: the no-fault plan keeps the
 * simulator bit-identical to the fault-free fast path, fault runs are
 * deterministic in the seed, and the acceptance scenario of
 * docs/fault-model.md — byte corruption plus a mid-run hub brownout —
 * recovers all pushed conditions with bounded recall loss and nonzero
 * fault metrics.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "sim/faults.h"
#include "sim/simulator.h"
#include "support/error.h"
#include "trace/robot_gen.h"

namespace sidewinder::sim {
namespace {

trace::Trace
robotTrace(double idle = 0.5, std::uint64_t seed = 42)
{
    trace::RobotRunConfig config;
    config.idleFraction = idle;
    config.durationSeconds = 180.0;
    config.seed = seed;
    return trace::generateRobotRun(config);
}

TEST(FaultPlan, DefaultPlanInjectsNothing)
{
    EXPECT_FALSE(FaultPlan{}.any());

    FaultPlan corrupt;
    corrupt.byteCorruptionRate = 1e-3;
    EXPECT_TRUE(corrupt.any());

    FaultPlan reset;
    reset.hubResetTimes = {60.0};
    EXPECT_TRUE(reset.any());

    FaultPlan stuck;
    stuck.stuckSensors = {{0, 10.0, 20.0}};
    EXPECT_TRUE(stuck.any());
}

TEST(FaultSim, NoFaultPlanIsBitIdenticalToFastPath)
{
    const auto trace = robotTrace();
    const auto app = apps::makeStepsApp();

    SimConfig plain;
    plain.strategy = Strategy::Sidewinder;
    SimConfig with_plan = plain;
    with_plan.faults = FaultPlan{}; // explicit no-fault plan

    const auto a = simulate(trace, *app, plain);
    const auto b = simulate(trace, *app, with_plan);

    EXPECT_EQ(a.hubTriggerCount, b.hubTriggerCount);
    EXPECT_EQ(a.averagePowerMw, b.averagePowerMw);
    EXPECT_EQ(a.recall, b.recall);
    EXPECT_EQ(a.precision, b.precision);
    EXPECT_EQ(a.meanDetectionLatencySeconds,
              b.meanDetectionLatencySeconds);
    EXPECT_EQ(a.timeline.awakeSeconds, b.timeline.awakeSeconds);
    EXPECT_FALSE(b.faults.any());
}

TEST(FaultSim, FaultRunsAreDeterministic)
{
    const auto trace = robotTrace();
    const auto app = apps::makeStepsApp();

    SimConfig config;
    config.strategy = Strategy::Sidewinder;
    config.faults.byteCorruptionRate = 5e-4;
    config.faults.hubResetTimes = {90.0};
    config.faults.hubResetDowntimeSeconds = 8.0;

    const auto a = simulate(trace, *app, config);
    const auto b = simulate(trace, *app, config);

    EXPECT_EQ(a.hubTriggerCount, b.hubTriggerCount);
    EXPECT_EQ(a.averagePowerMw, b.averagePowerMw);
    EXPECT_EQ(a.recall, b.recall);
    EXPECT_EQ(a.faults.retransmits, b.faults.retransmits);
    EXPECT_EQ(a.faults.bytesCorrupted, b.faults.bytesCorrupted);
    EXPECT_EQ(a.faults.framesLost, b.faults.framesLost);
    EXPECT_EQ(a.faults.hubDownSeconds, b.faults.hubDownSeconds);
    EXPECT_EQ(a.faults.fallbackEnergyMj, b.faults.fallbackEnergyMj);

    // A different seed draws a different corruption pattern.
    SimConfig reseeded = config;
    reseeded.faults.seed = 0xABCDEF;
    const auto c = simulate(trace, *app, reseeded);
    EXPECT_NE(a.faults.bytesCorrupted, c.faults.bytesCorrupted);
}

TEST(FaultSim, AcceptanceScenarioRecoversWithBoundedRecallLoss)
{
    // The acceptance scenario of ISSUE 4 / docs/fault-model.md: the
    // Fig. 5 robot workload with 1e-3 per-byte corruption and one
    // scheduled brownout mid-run.
    const auto trace = robotTrace();
    const auto app = apps::makeStepsApp();

    SimConfig fault_free;
    fault_free.strategy = Strategy::Sidewinder;
    const auto baseline = simulate(trace, *app, fault_free);

    SimConfig faulty = fault_free;
    faulty.faults.byteCorruptionRate = 1e-3;
    faulty.faults.hubResetTimes = {60.0};
    faulty.faults.hubResetDowntimeSeconds = 10.0;
    const auto r = simulate(trace, *app, faulty);

    // The condition survived the reset: the supervisor re-pushed it
    // and the hub kept triggering after recovery.
    EXPECT_GE(r.faults.repushedConditions, 1u);
    EXPECT_EQ(r.faults.hubResets, 1u);
    EXPECT_GT(r.hubTriggerCount, 0u);

    // Degraded but bounded: recall within 10% of fault-free.
    EXPECT_GE(r.recall, 0.9 * baseline.recall);

    // The fault machinery visibly did work.
    EXPECT_GT(r.faults.bytesCorrupted, 0u);
    EXPECT_GT(r.faults.retransmits, 0u);
    EXPECT_GT(r.faults.hubDownSeconds, 0.0);
    EXPECT_LT(r.faults.hubDownSeconds, 30.0);
    EXPECT_GT(r.faults.fallbackAwakeSeconds, 0.0);
    EXPECT_GT(r.faults.fallbackEnergyMj, 0.0);
    EXPECT_TRUE(r.faults.any());

    // The fallback and retransmissions cost energy, never save it.
    EXPECT_GE(r.averagePowerMw, baseline.averagePowerMw * 0.99);
}

TEST(FaultSim, FaultFreeReconfigCommitsBetweenTwoWaves)
{
    // A live retune on the Fig. 5 robot workload with no faults: the
    // update must commit on the first attempt, ship fewer bytes than
    // a full re-push, and blind the hub for exactly one sample period
    // (the swap lands between two evaluation waves — no dropped
    // samples).
    const auto trace = robotTrace();
    const auto app = apps::makeStepsApp();

    SimConfig config;
    config.strategy = Strategy::Sidewinder;
    config.faults.reconfigUpdates = {{90.0, 0.8}};
    const auto r = simulate(trace, *app, config);

    EXPECT_EQ(r.faults.updatesCommitted, 1u);
    EXPECT_EQ(r.faults.updatesRolledBack, 0u);
    EXPECT_GT(r.faults.reconfigDeltaBytes, 0u);
    EXPECT_LT(r.faults.reconfigDeltaBytes, r.faults.reconfigFullBytes);
    EXPECT_GT(r.hubTriggerCount, 0u);

    // One sample period at the trace's accelerometer rate.
    const double period = trace.timeOf(1) - trace.timeOf(0);
    EXPECT_NEAR(r.faults.blindWindowSeconds, period, 1e-9);

    // Reconfiguration is a fault-plan axis, so the run reports it.
    EXPECT_TRUE(r.faults.any());
}

TEST(FaultSim, CorruptionDuringUpdateRetriesUntilCommitted)
{
    // The acceptance axis of the live-reconfiguration issue: 1e-3
    // per-byte corruption applied only while an update transaction is
    // in flight. A mangled delta or commit rolls the transaction back
    // (CRC failure or stale staging), and the driver retries under a
    // fresh epoch until the hub lands on the B plan. The hub must
    // never end up on a mix of the two.
    const auto trace = robotTrace();
    const auto app = apps::makeStepsApp();

    SimConfig config;
    config.strategy = Strategy::Sidewinder;
    config.faults.reconfigUpdates = {{60.0, 0.8}};
    config.faults.updateCorruptionRate = 1e-3;
    const auto r = simulate(trace, *app, config);

    // However many retries it took, the update eventually committed
    // and the hub kept triggering on a coherent plan.
    EXPECT_GE(r.faults.updatesCommitted, 1u);
    EXPECT_GT(r.hubTriggerCount, 0u);
    EXPECT_GT(r.recall, 0.0);

    // Determinism in the seed, rollbacks and all.
    const auto again = simulate(trace, *app, config);
    EXPECT_EQ(r.faults.updatesCommitted, again.faults.updatesCommitted);
    EXPECT_EQ(r.faults.updatesRolledBack,
              again.faults.updatesRolledBack);
    EXPECT_EQ(r.faults.bytesCorrupted, again.faults.bytesCorrupted);
    EXPECT_EQ(r.hubTriggerCount, again.hubTriggerCount);
}

TEST(FaultSim, FrameDropsAreRetransmitted)
{
    const auto trace = robotTrace();
    const auto app = apps::makeStepsApp();

    SimConfig config;
    config.strategy = Strategy::Sidewinder;
    config.faults.frameDropRate = 0.05;
    const auto r = simulate(trace, *app, config);

    EXPECT_GT(r.faults.framesDropped, 0u);
    EXPECT_GT(r.faults.retransmits, 0u);
    EXPECT_GT(r.recall, 0.0);
}

TEST(FaultSim, StuckSensorSuppressesTriggers)
{
    const auto trace = robotTrace();
    const auto app = apps::makeStepsApp();

    SimConfig config;
    config.strategy = Strategy::Sidewinder;
    const auto healthy = simulate(trace, *app, config);

    // Freeze all three accelerometer axes for most of the run: the
    // magnitude pipeline sees a constant and the hub goes quiet for
    // that window.
    SimConfig stuck = config;
    stuck.faults.stuckSensors = {
        {0, 20.0, 170.0}, {1, 20.0, 170.0}, {2, 20.0, 170.0}};
    const auto r = simulate(trace, *app, stuck);

    EXPECT_LT(r.hubTriggerCount, healthy.hubTriggerCount);
    EXPECT_LT(r.recall, healthy.recall);
}

TEST(FaultSim, StuckSensorValidation)
{
    const auto trace = robotTrace();
    const auto app = apps::makeStepsApp();

    SimConfig config;
    config.strategy = Strategy::Sidewinder;
    config.faults.stuckSensors = {{9, 10.0, 20.0}}; // no such channel
    EXPECT_THROW(simulate(trace, *app, config), ConfigError);

    config.faults.stuckSensors = {{0, 20.0, 20.0}}; // empty window
    EXPECT_THROW(simulate(trace, *app, config), ConfigError);
}

TEST(FaultSim, FaultsRequireSidewinderOnMcu)
{
    const auto trace = robotTrace();
    const auto app = apps::makeStepsApp();

    SimConfig config;
    config.strategy = Strategy::DutyCycling;
    config.faults.byteCorruptionRate = 1e-3;
    EXPECT_THROW(simulate(trace, *app, config), ConfigError);

    config.strategy = Strategy::Sidewinder;
    config.hubBackend = HubBackend::Fpga;
    EXPECT_THROW(simulate(trace, *app, config), ConfigError);
}

} // namespace
} // namespace sidewinder::sim
