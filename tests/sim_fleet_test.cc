/**
 * @file
 * Tests for sim::FleetRuntime and the fleet-wide plan cache: thread-
 * count independence (field-for-field), exact cache accounting under a
 * known app mix, and install/remove/reinstall RAM accounting.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "apps/apps.h"
#include "hub/mcu.h"
#include "il/lower.h"
#include "sim/fleet.h"
#include "support/thread_pool.h"
#include "trace/robot_gen.h"

namespace sim = sidewinder::sim;
namespace apps = sidewinder::apps;
namespace hub = sidewinder::hub;
namespace il = sidewinder::il;
namespace trace = sidewinder::trace;
using sidewinder::support::ThreadPool;

namespace {

/** The accelerometer mix every fleet test shares (skewed). */
struct Fixture
{
    std::unique_ptr<apps::Application> steps = apps::makeStepsApp();
    std::unique_ptr<apps::Application> transitions =
        apps::makeTransitionsApp();
    std::unique_ptr<apps::Application> headbutts =
        apps::makeHeadbuttsApp();
    trace::Trace run;

    Fixture()
    {
        trace::RobotRunConfig rc;
        rc.idleFraction = 0.5;
        rc.durationSeconds = 30.0;
        rc.seed = 7;
        run = trace::generateRobotRun(rc);
    }

    std::vector<sim::FleetAppMix>
    mix() const
    {
        return {{steps.get(), 0.7},
                {transitions.get(), 0.2},
                {headbutts.get(), 0.1}};
    }

    sim::FleetConfig
    config(std::size_t devices) const
    {
        sim::FleetConfig cfg;
        cfg.deviceCount = devices;
        cfg.devicesPerShard = 16;
        cfg.blockSamples = 32;
        cfg.secondsPerDevice = 2.0;
        cfg.seed = 11;
        return cfg;
    }
};

/** Build + run a fresh fleet on @p pool and collect. */
sim::FleetResult
runFleet(const Fixture &fx, const sim::FleetConfig &cfg,
         ThreadPool &pool, int runs = 1)
{
    sim::FleetRuntime fleet(cfg, fx.mix(), fx.run);
    fleet.build(pool);
    for (int i = 0; i < runs; ++i)
        fleet.run(pool);
    return fleet.collect();
}

void
expectIdentical(const sim::FleetResult &a, const sim::FleetResult &b)
{
    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (std::size_t d = 0; d < a.devices.size(); ++d) {
        const auto &da = a.devices[d];
        const auto &db = b.devices[d];
        EXPECT_EQ(da.appIndex, db.appIndex) << "device " << d;
        EXPECT_EQ(da.conditionsAdmitted, db.conditionsAdmitted);
        EXPECT_EQ(da.conditionsRejected, db.conditionsRejected);
        EXPECT_EQ(da.brownedOut, db.brownedOut);
        EXPECT_EQ(da.samplesIngested, db.samplesIngested);
        EXPECT_EQ(da.wakeEvents, db.wakeEvents) << "device " << d;
        EXPECT_EQ(da.wakeDigest, db.wakeDigest) << "device " << d;
        EXPECT_EQ(da.lastWakeTimestamp, db.lastWakeTimestamp);
        EXPECT_EQ(da.hubEnergyMj, db.hubEnergyMj);
        EXPECT_EQ(da.ramBytes, db.ramBytes);
        EXPECT_EQ(da.homeExecutor, db.homeExecutor) << "device " << d;
        EXPECT_EQ(da.hubPowerMw, db.hubPowerMw) << "device " << d;
    }
    EXPECT_EQ(a.fleetPowerMw, b.fleetPowerMw);
    EXPECT_EQ(a.executorConditions, b.executorConditions);
    EXPECT_EQ(a.samplesIngested, b.samplesIngested);
    EXPECT_EQ(a.wakeEvents, b.wakeEvents);
    EXPECT_EQ(a.digest, b.digest);
}

TEST(FleetRuntime, BitIdenticalAcrossThreadCounts)
{
    Fixture fx;
    const auto cfg = fx.config(96);

    ThreadPool serial(1);
    ThreadPool two(2);
    ThreadPool five(5);
    const auto r1 = runFleet(fx, cfg, serial, 2);
    const auto r2 = runFleet(fx, cfg, two, 2);
    const auto r5 = runFleet(fx, cfg, five, 2);

    // The fleet must actually do something for this to mean anything.
    EXPECT_GT(r1.wakeEvents, 0u);
    EXPECT_EQ(r1.samplesIngested,
              96u * 2u * 100u); // 2 runs x 2 s x 50 Hz per device

    expectIdentical(r1, r2);
    expectIdentical(r1, r5);

    // Cache counters are exact, not just the device results: the
    // local/global split depends only on the device->shard mapping.
    EXPECT_EQ(r1.cache.misses, r2.cache.misses);
    EXPECT_EQ(r1.cache.globalHits, r2.cache.globalHits);
    EXPECT_EQ(r1.cache.localHits, r2.cache.localHits);
    EXPECT_EQ(r1.cache.misses, r5.cache.misses);
    EXPECT_EQ(r1.cache.globalHits, r5.cache.globalHits);
    EXPECT_EQ(r1.cache.localHits, r5.cache.localHits);
}

TEST(FleetRuntime, CacheCountersExactUnderKnownMix)
{
    Fixture fx;
    const auto cfg = fx.config(128); // 8 shards of 16
    ThreadPool pool(4);

    sim::FleetRuntime fleet(cfg, fx.mix(), fx.run);
    fleet.build(pool);
    const auto result = fleet.collect();

    // Reconstruct the expected counters from the (deterministic)
    // device->app assignment: one intern per device; the first
    // occurrence of an app fleet-wide is a miss, the first in each
    // further shard a global hit, everything else a local hit.
    std::set<int> distinct_apps;
    std::set<std::pair<std::size_t, int>> shard_app_pairs;
    for (std::size_t d = 0; d < fleet.deviceCount(); ++d) {
        const int app = fleet.deviceAppIndex(d);
        ASSERT_GE(app, 0);
        distinct_apps.insert(app);
        shard_app_pairs.insert({fleet.shardOf(d), app});
    }

    EXPECT_EQ(result.cache.lookups(), 128u);
    EXPECT_EQ(result.cache.misses, distinct_apps.size());
    EXPECT_EQ(result.cache.globalHits,
              shard_app_pairs.size() - distinct_apps.size());
    EXPECT_EQ(result.cache.localHits,
              128u - shard_app_pairs.size());
    EXPECT_EQ(result.cache.planCount, distinct_apps.size());
    EXPECT_GT(result.cache.retainedBytes, 0u);
    EXPECT_GT(result.cache.hitRate(), 0.9);

    // The skewed 0.7/0.2/0.1 mix over 128 devices should draw all
    // three apps (seeded, so this is a fixed fact, not a flake).
    EXPECT_EQ(distinct_apps.size(), 3u);
}

TEST(FleetRuntime, SharedAndPrivateLoweringAgree)
{
    Fixture fx;
    auto cfg = fx.config(48);
    ThreadPool pool(3);

    const auto shared = runFleet(fx, cfg, pool);
    cfg.shareAcrossTenants = false;
    const auto private_ = runFleet(fx, cfg, pool);

    // The cache is an optimization: per-device behavior must be
    // identical with it disabled (the digest covers device fields
    // only, so it compares across the ablation).
    expectIdentical(shared, private_);
    EXPECT_GT(shared.cache.lookups(), 0u);
    EXPECT_EQ(private_.cache.lookups(), 0u);
}

TEST(FleetRuntime, InstallRemoveReinstallRamAccounting)
{
    Fixture fx;
    sim::FleetConfig cfg = fx.config(2);
    cfg.devicesPerShard = 2;
    ThreadPool pool(1);

    sim::FleetRuntime fleet(cfg, fx.mix(), fx.run);
    fleet.build(pool);

    const auto before = fleet.collect();
    const std::size_t base_ram = before.devices[0].ramBytes;
    const auto cache_before = fleet.planCache().stats();
    ASSERT_GT(base_ram, 0u);

    // Install a second, different condition on tenant 0 only.
    ASSERT_TRUE(fleet.installCondition(0, 99, *fx.transitions));
    const auto with_extra = fleet.collect();
    const std::size_t extra_ram = with_extra.devices[0].ramBytes;
    EXPECT_GT(extra_ram, base_ram);
    EXPECT_EQ(with_extra.devices[0].conditionsAdmitted, 2u);
    // Tenant 1 is untouched.
    EXPECT_EQ(with_extra.devices[1].ramBytes,
              before.devices[1].ramBytes);

    // Remove: RAM accounting returns exactly to the baseline.
    fleet.removeCondition(0, 99);
    const auto removed = fleet.collect();
    EXPECT_EQ(removed.devices[0].ramBytes, base_ram);
    EXPECT_EQ(removed.devices[0].conditionsAdmitted, 1u);

    // Reinstall: same footprint as the first install, and the plan
    // comes from the cache (no new lowering).
    ASSERT_TRUE(fleet.installCondition(0, 99, *fx.transitions));
    const auto reinstalled = fleet.collect();
    EXPECT_EQ(reinstalled.devices[0].ramBytes, extra_ram);

    const auto cache_after = fleet.planCache().stats();
    EXPECT_EQ(cache_after.misses - cache_before.misses,
              fx.transitions->name() == fx.steps->name() ? 0u : 1u);
    EXPECT_EQ(cache_after.lookups() - cache_before.lookups(), 2u);

    // The fleet still runs after the management-plane churn.
    fleet.run(pool);
    const auto final_ = fleet.collect();
    EXPECT_EQ(final_.devices[0].samplesIngested, 100u);
}

TEST(FleetRuntime, BrownoutsAreDeterministic)
{
    Fixture fx;
    auto cfg = fx.config(64);
    cfg.brownoutFraction = 0.3;
    ThreadPool pool(1);
    ThreadPool pool4(4);

    const auto a = runFleet(fx, cfg, pool);
    const auto b = runFleet(fx, cfg, pool4);

    EXPECT_GT(a.brownouts, 0u);
    EXPECT_LT(a.brownouts, 64u);
    expectIdentical(a, b);

    std::size_t flagged = 0;
    for (const auto &d : a.devices)
        if (d.brownedOut)
            ++flagged;
    EXPECT_EQ(flagged, a.brownouts);
}

TEST(FleetRuntime, TinyBudgetRejectsEveryTenant)
{
    Fixture fx;
    auto cfg = fx.config(8);
    cfg.mcu.name = "toy";
    cfg.mcu.cyclesPerSecond = 1.0; // Nothing fits.
    cfg.mcu.ramBytes = 16;
    ThreadPool pool(1);

    const auto result = runFleet(fx, cfg, pool);
    EXPECT_EQ(result.admittedDevices, 0u);
    EXPECT_EQ(result.rejectedDevices, 8u);
    EXPECT_EQ(result.samplesIngested, 0u);
    EXPECT_EQ(result.wakeEvents, 0u);
    EXPECT_EQ(result.hubEnergyMj, 0.0);
}

TEST(FleetRuntime, ProvenWakeBoundAdmitsMoreTenants)
{
    // A 10 Hz wake budget: every app's *syntactic* wake bound is
    // 50 Hz (one potential wake per accelerometer sample), so
    // syntactic admission would reject the whole fleet. The range
    // analyzer proves steps fires at most ~3.1 Hz and headbutts at
    // most ~4.5 Hz (debounced peak detectors, SW312), so those
    // tenants are admitted on the proven bound; transitions (a bare
    // band threshold, provably no tighter) is still rejected.
    Fixture fx;
    const auto channels = fx.steps->channels();
    for (const auto *app : {fx.steps.get(), fx.transitions.get(),
                            fx.headbutts.get()}) {
        const il::ExecutionPlan plan =
            il::lower(app->wakeCondition().compile(), channels);
        EXPECT_GT(plan.wakeRateBoundHz, 10.0) << app->name();
    }

    auto cfg = fx.config(32);
    cfg.mcu.wakeBudgetHz = 10.0;
    ThreadPool pool(2);
    sim::FleetRuntime fleet(cfg, fx.mix(), fx.run);
    fleet.build(pool);
    const auto result = fleet.collect();

    EXPECT_GT(result.admittedDevices, 0u);
    EXPECT_GT(result.rejectedDevices, 0u);
    for (const auto &d : result.devices) {
        const bool transitions = d.appIndex == 1;
        EXPECT_EQ(d.conditionsAdmitted, transitions ? 0u : 1u)
            << "app " << d.appIndex;
        EXPECT_EQ(d.conditionsRejected, transitions ? 1u : 0u)
            << "app " << d.appIndex;
    }

    // The ablation path (no cross-tenant sharing) must reach the
    // identical admission verdicts — the proof is a pure function
    // of the plan, memoized or not.
    auto private_cfg = cfg;
    private_cfg.shareAcrossTenants = false;
    sim::FleetRuntime private_fleet(private_cfg, fx.mix(), fx.run);
    private_fleet.build(pool);
    const auto private_result = private_fleet.collect();
    EXPECT_EQ(result.admittedDevices, private_result.admittedDevices);
    EXPECT_EQ(result.rejectedDevices, private_result.rejectedDevices);
}

TEST(FleetRuntime, WakeBudgetSumsAcrossConditionsPerDevice)
{
    // Two conditions per device at ~3.1 Hz proven each: both fit a
    // 10 Hz budget (6.2 total), but only one fits 4 Hz — the
    // device's admitted wake load is cumulative.
    Fixture fx;
    std::vector<sim::FleetAppMix> steps_only = {{fx.steps.get(), 1.0}};

    auto cfg = fx.config(4);
    cfg.conditionsPerDevice = 2;
    cfg.sharePerEngine = false; // Second install is not free.
    cfg.mcu.wakeBudgetHz = 4.0;
    ThreadPool pool(1);
    sim::FleetRuntime tight(cfg, steps_only, fx.run);
    tight.build(pool);
    for (const auto &d : tight.collect().devices) {
        EXPECT_EQ(d.conditionsAdmitted, 1u);
        EXPECT_EQ(d.conditionsRejected, 1u);
    }

    cfg.mcu.wakeBudgetHz = 10.0;
    sim::FleetRuntime roomy(cfg, steps_only, fx.run);
    roomy.build(pool);
    for (const auto &d : roomy.collect().devices)
        EXPECT_EQ(d.conditionsAdmitted, 2u);
}

TEST(FleetRuntime, HeterogeneousExecutorsBitIdenticalAcrossThreads)
{
    Fixture fx;
    auto cfg = fx.config(96);
    cfg.executors = hub::platformExecutors();

    ThreadPool serial(1);
    ThreadPool two(2);
    ThreadPool five(5);
    const auto r1 = runFleet(fx, cfg, serial, 2);
    const auto r2 = runFleet(fx, cfg, two, 2);
    const auto r5 = runFleet(fx, cfg, five, 2);

    EXPECT_GT(r1.wakeEvents, 0u);
    expectIdentical(r1, r2);
    expectIdentical(r1, r5);
    EXPECT_EQ(r1.digest, r2.digest);
    EXPECT_EQ(r1.digest, r5.digest);
}

TEST(FleetRuntime, HeterogeneousHomingLedgersAndPlacements)
{
    Fixture fx;
    auto cfg = fx.config(64);
    cfg.executors = hub::platformExecutors();
    ThreadPool pool(4);

    sim::FleetRuntime fleet(cfg, fx.mix(), fx.run);
    fleet.build(pool);
    const auto result = fleet.collect();

    ASSERT_EQ(fleet.executorSet().size(),
              hub::platformExecutors().size());
    ASSERT_EQ(result.executorConditions.size(),
              fleet.executorSet().size());

    // Every admitted condition is homed somewhere, and the per-
    // executor tallies account for all of them.
    std::size_t admitted = 0;
    std::size_t homed = 0;
    for (const auto &d : result.devices)
        admitted += d.conditionsAdmitted;
    for (std::size_t e = 0; e < result.executorConditions.size(); ++e)
        homed += result.executorConditions[e];
    EXPECT_EQ(admitted, homed);
    EXPECT_GT(admitted, 0u);
    EXPECT_GT(result.fleetPowerMw, 0.0);

    // Per-device: the placement accessor agrees with the recorded
    // home, and the first condition (id 1) is installed everywhere.
    for (std::size_t d = 0; d < result.devices.size(); ++d) {
        const auto &stats = result.devices[d];
        ASSERT_GT(stats.conditionsAdmitted, 0u) << "device " << d;
        const hub::PlacementDecision &home = fleet.placementOf(d, 1);
        ASSERT_TRUE(home.placed()) << "device " << d;
        EXPECT_EQ(home.executorIndex, stats.homeExecutor);
        EXPECT_EQ(
            home.executorName,
            fleet.executorSet()[static_cast<std::size_t>(
                                    home.executorIndex)]
                .name);
        EXPECT_GT(stats.hubPowerMw, 0.0);
    }
    EXPECT_THROW(fleet.placementOf(0, 999), sidewinder::ConfigError);
}

TEST(FleetRuntime, HeterogeneousFleetNoPricierThanSingleMcu)
{
    // The platform space strictly contains the single-MCU space, so
    // the negotiated fleet power can only improve.
    Fixture fx;
    ThreadPool pool(4);

    auto classic_cfg = fx.config(64);
    sim::FleetRuntime classic(classic_cfg, fx.mix(), fx.run);
    classic.build(pool);
    const auto classic_result = classic.collect();

    auto hetero_cfg = fx.config(64);
    hetero_cfg.executors = hub::platformExecutors();
    sim::FleetRuntime hetero(hetero_cfg, fx.mix(), fx.run);
    hetero.build(pool);
    const auto hetero_result = hetero.collect();

    EXPECT_LE(hetero_result.fleetPowerMw,
              classic_result.fleetPowerMw);
    // Wake behavior is a property of the condition, not the home.
    EXPECT_EQ(hetero_result.samplesIngested,
              classic_result.samplesIngested);
}

TEST(FleetRuntime, RejectsMismatchedMixes)
{
    Fixture fx;
    auto siren = apps::makeSirenApp(); // AUDIO channel, not ACC_*
    std::vector<sim::FleetAppMix> mixed = {{fx.steps.get(), 1.0},
                                           {siren.get(), 1.0}};
    EXPECT_THROW(
        sim::FleetRuntime(fx.config(4), mixed, fx.run),
        sidewinder::ConfigError);

    EXPECT_THROW(sim::FleetRuntime(fx.config(0), fx.mix(), fx.run),
                 sidewinder::ConfigError);
    EXPECT_THROW(sim::FleetRuntime(fx.config(4), {}, fx.run),
                 sidewinder::ConfigError);
}

TEST(ExecutionPlanSeal, LowerSealsAndHashDetectsMutation)
{
    Fixture fx;
    const auto channels = fx.steps->channels();
    const il::Program program = fx.steps->wakeCondition().compile();

    il::ExecutionPlan plan = il::lower(program, channels);
    ASSERT_TRUE(plan.sealed());
    EXPECT_EQ(plan.structuralHash(), plan.sealedHash);

    // Any structural change flips the hash — the debug tripwire the
    // fleet cache arms on every shared install.
    il::ExecutionPlan tampered = plan;
    ASSERT_FALSE(tampered.invokeRateHz.empty());
    tampered.invokeRateHz[0] += 1.0;
    EXPECT_NE(tampered.structuralHash(), plan.sealedHash);
}

} // namespace
