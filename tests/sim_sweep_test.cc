/**
 * @file
 * Determinism contract of the parallel sweep engine: sim::runSweep
 * must return SimResults that are field-for-field identical to a
 * serial loop over the same cells, at every thread count. Each cell
 * owns its engine and timeline and all randomness is baked into the
 * traces at generation time, so parallel replay changes nothing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/apps.h"
#include "sim/sweep.h"
#include "support/thread_pool.h"
#include "trace/robot_gen.h"

namespace sidewinder::sim {
namespace {

/** Exact (bitwise for doubles) equality of every SimResult field. */
void
expectIdentical(const SimResult &a, const SimResult &b,
                std::size_t cell, std::size_t threads)
{
    SCOPED_TRACE("cell " + std::to_string(cell) + " at " +
                 std::to_string(threads) + " threads");
    EXPECT_EQ(a.configName, b.configName);
    EXPECT_EQ(a.averagePowerMw, b.averagePowerMw);
    EXPECT_EQ(a.hubTriggerCount, b.hubTriggerCount);
    EXPECT_EQ(a.recall, b.recall);
    EXPECT_EQ(a.precision, b.precision);
    EXPECT_EQ(a.detection.truePositives, b.detection.truePositives);
    EXPECT_EQ(a.detection.falsePositives,
              b.detection.falsePositives);
    EXPECT_EQ(a.detection.falseNegatives,
              b.detection.falseNegatives);
    EXPECT_EQ(a.timeline.totalSeconds, b.timeline.totalSeconds);
    EXPECT_EQ(a.timeline.awakeSeconds, b.timeline.awakeSeconds);
    EXPECT_EQ(a.timeline.asleepSeconds, b.timeline.asleepSeconds);
    EXPECT_EQ(a.timeline.wakeUps, b.timeline.wakeUps);
    EXPECT_EQ(a.timeline.averagePowerMw, b.timeline.averagePowerMw);
    EXPECT_EQ(a.timeline.energyMj, b.timeline.energyMj);
    EXPECT_EQ(a.meanDetectionLatencySeconds,
              b.meanDetectionLatencySeconds);
    EXPECT_EQ(a.mcuName, b.mcuName);
    EXPECT_EQ(a.hubMw, b.hubMw);
}

class SimSweepTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // Two short seeded robot runs at different activity levels.
        for (int run = 0; run < 2; ++run) {
            trace::RobotRunConfig config;
            config.idleFraction = run == 0 ? 0.9 : 0.1;
            config.durationSeconds = 60.0;
            config.seed = 4100 + static_cast<std::uint64_t>(run);
            config.name = "sweep-test-" + std::to_string(run);
            traces.push_back(generateRobotRun(config));
        }
        for (const auto &t : traces)
            trace_ptrs.push_back(&t);

        apps.push_back(apps::makeStepsApp());
        apps.push_back(apps::makeTransitionsApp());
        for (const auto &app : apps)
            app_ptrs.push_back(app.get());

        // Strategies exercising every simulator code path that runs
        // under the sweep: hub-driven, duty-cycled, and trivial.
        for (const Strategy strategy :
             {Strategy::Sidewinder, Strategy::DutyCycling,
              Strategy::Oracle, Strategy::AlwaysAwake}) {
            SimConfig config;
            config.strategy = strategy;
            config.sleepIntervalSeconds = 5.0;
            configs.push_back(config);
        }

        cells = makeGrid(trace_ptrs, app_ptrs, configs);
    }

    std::vector<trace::Trace> traces;
    std::vector<const trace::Trace *> trace_ptrs;
    std::vector<std::unique_ptr<apps::Application>> apps;
    std::vector<const apps::Application *> app_ptrs;
    std::vector<SimConfig> configs;
    std::vector<SweepCell> cells;
};

TEST_F(SimSweepTest, GridOrderIsAppConfigTrace)
{
    ASSERT_EQ(cells.size(),
              traces.size() * apps.size() * configs.size());
    // Row-major: app outermost, then config, then trace.
    EXPECT_EQ(cells[0].app, app_ptrs[0]);
    EXPECT_EQ(cells[0].trace, trace_ptrs[0]);
    EXPECT_EQ(cells[1].trace, trace_ptrs[1]);
    EXPECT_EQ(cells[1].config.strategy, configs[0].strategy);
    EXPECT_EQ(cells[2].config.strategy, configs[1].strategy);
    EXPECT_EQ(cells[cells.size() - 1].app,
              app_ptrs[app_ptrs.size() - 1]);
}

TEST_F(SimSweepTest, ParallelResultsIdenticalToSerialAtEveryCount)
{
    const auto serial = runSweepSerial(cells);
    ASSERT_EQ(serial.size(), cells.size());

    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2},
          support::ThreadPool::defaultThreadCount()}) {
        support::ThreadPool pool(threads);
        const auto parallel = runSweep(cells, pool);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t i = 0; i < serial.size(); ++i)
            expectIdentical(serial[i], parallel[i], i, threads);
    }
}

TEST_F(SimSweepTest, SharedPoolOverloadMatchesSerial)
{
    const auto serial = runSweepSerial(cells);
    const auto parallel = runSweep(cells);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], parallel[i], i,
                        support::ThreadPool::shared().threadCount());
}

TEST_F(SimSweepTest, RepeatedParallelRunsAreStable)
{
    support::ThreadPool pool(2);
    const auto first = runSweep(cells, pool);
    const auto second = runSweep(cells, pool);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectIdentical(first[i], second[i], i, 2);
}

TEST_F(SimSweepTest, EmptyCellListYieldsEmptyResults)
{
    support::ThreadPool pool(2);
    EXPECT_TRUE(runSweep({}, pool).empty());
    EXPECT_TRUE(runSweepSerial({}).empty());
}

TEST_F(SimSweepTest, CellExceptionPropagates)
{
    // An audio app over an accelerometer trace lacks the AUDIO
    // channel; simulate() throws and the sweep must surface it.
    const auto siren = apps::makeSirenApp();
    std::vector<SweepCell> bad = cells;
    SimConfig config;
    config.strategy = Strategy::Sidewinder;
    bad.push_back({trace_ptrs[0], siren.get(), config});
    support::ThreadPool pool(2);
    EXPECT_THROW(runSweep(bad, pool), std::exception);
    EXPECT_THROW(runSweepSerial(bad), std::exception);
}

} // namespace
} // namespace sidewinder::sim
