/**
 * @file
 * Tests for the trace-driven simulator: power model (Table 1),
 * timeline accounting, and the qualitative orderings of Section 5.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "sim/calibrate.h"
#include "sim/power_model.h"
#include "sim/simulator.h"
#include "sim/timeline.h"
#include "support/error.h"
#include "trace/robot_gen.h"

namespace sidewinder::sim {
namespace {

trace::Trace
robotTrace(double idle = 0.5, std::uint64_t seed = 42)
{
    trace::RobotRunConfig config;
    config.idleFraction = idle;
    config.durationSeconds = 180.0;
    config.seed = seed;
    return trace::generateRobotRun(config);
}

TEST(PowerModel, Table1Values)
{
    const PowerModel model = nexus4();
    EXPECT_DOUBLE_EQ(model.awakeMw, 323.0);
    EXPECT_DOUBLE_EQ(model.asleepMw, 9.7);
    EXPECT_DOUBLE_EQ(model.wakeTransitionMw, 384.0);
    EXPECT_DOUBLE_EQ(model.sleepTransitionMw, 341.0);
    EXPECT_DOUBLE_EQ(model.transitionSeconds, 1.0);
    EXPECT_DOUBLE_EQ(nexus4WithHub(3.6).hubMw, 3.6);
}

TEST(Timeline, AlwaysAsleepCostsSleepPower)
{
    DeviceTimeline timeline(100.0);
    const auto s = timeline.summarize(nexus4());
    EXPECT_DOUBLE_EQ(s.averagePowerMw, 9.7);
    EXPECT_EQ(s.wakeUps, 0u);
}

TEST(Timeline, AlwaysAwakeCostsAwakePower)
{
    DeviceTimeline timeline(100.0);
    timeline.addAwakeInterval(0.0, 100.0);
    const auto s = timeline.summarize(nexus4());
    EXPECT_DOUBLE_EQ(s.averagePowerMw, 323.0);
    EXPECT_DOUBLE_EQ(s.asleepSeconds, 0.0);
}

TEST(Timeline, SingleEpisodeChargesBothTransitions)
{
    DeviceTimeline timeline(100.0);
    timeline.addAwakeInterval(50.0, 60.0);
    const auto s = timeline.summarize(nexus4());
    EXPECT_DOUBLE_EQ(s.awakeSeconds, 10.0);
    EXPECT_DOUBLE_EQ(s.wakeTransitionSeconds, 1.0);
    EXPECT_DOUBLE_EQ(s.sleepTransitionSeconds, 1.0);
    EXPECT_DOUBLE_EQ(s.asleepSeconds, 88.0);
    const double expected =
        (10.0 * 323.0 + 384.0 + 341.0 + 88.0 * 9.7) / 100.0;
    EXPECT_NEAR(s.averagePowerMw, expected, 1e-9);
}

TEST(Timeline, CloseIntervalsMerge)
{
    DeviceTimeline timeline(100.0);
    timeline.addAwakeInterval(10.0, 11.0);
    timeline.addAwakeInterval(11.5, 12.5); // gap 0.5 < 2 transitions
    const auto s = timeline.summarize(nexus4());
    EXPECT_EQ(s.wakeUps, 1u);
    EXPECT_DOUBLE_EQ(s.awakeSeconds, 2.5);
}

TEST(Timeline, DistantIntervalsStaySeparate)
{
    DeviceTimeline timeline(100.0);
    timeline.addAwakeInterval(10.0, 11.0);
    timeline.addAwakeInterval(50.0, 51.0);
    const auto s = timeline.summarize(nexus4());
    EXPECT_EQ(s.wakeUps, 2u);
    EXPECT_DOUBLE_EQ(s.wakeTransitionSeconds, 2.0);
}

TEST(Timeline, HubPowerAppliesToWholeRun)
{
    DeviceTimeline timeline(100.0);
    const auto s = timeline.summarize(nexus4WithHub(3.6));
    EXPECT_NEAR(s.averagePowerMw, 9.7 + 3.6, 1e-9);
}

TEST(Timeline, ClampsOutOfRangeIntervals)
{
    DeviceTimeline timeline(10.0);
    timeline.addAwakeInterval(-5.0, 2.0);
    timeline.addAwakeInterval(9.0, 20.0);
    const auto s = timeline.summarize(nexus4());
    EXPECT_DOUBLE_EQ(s.awakeSeconds, 3.0);
    EXPECT_THROW(DeviceTimeline(0.0), ConfigError);
}


TEST(PowerModel, BatteryLifeProjection)
{
    // 7.98 Wh at 323 mW (always awake) is about a day; at 9.7 mW
    // (asleep) about a month.
    EXPECT_NEAR(batteryLifeHours(323.0), 24.7, 0.5);
    EXPECT_NEAR(batteryLifeHours(9.7), 822.0, 10.0);
    EXPECT_DOUBLE_EQ(batteryLifeHours(0.0), 0.0);
    // More power, less life (monotonicity).
    EXPECT_GT(batteryLifeHours(50.0), batteryLifeHours(100.0));
}

TEST(Simulator, StrategyNames)
{
    EXPECT_EQ(strategyName(Strategy::AlwaysAwake), "AA");
    EXPECT_EQ(strategyName(Strategy::DutyCycling, 10.0), "DC-10");
    EXPECT_EQ(strategyName(Strategy::Batching, 5.0), "Ba-5");
    EXPECT_EQ(strategyName(Strategy::Sidewinder), "Sw");
}

class SimOrdering : public ::testing::Test
{
  protected:
    static SimResult
    run(const trace::Trace &t, const apps::Application &app,
        Strategy strategy, double sleep = 10.0)
    {
        SimConfig config;
        config.strategy = strategy;
        config.sleepIntervalSeconds = sleep;
        return simulate(t, app, config);
    }
};

TEST_F(SimOrdering, AlwaysAwakeCosts323)
{
    const auto app = apps::makeHeadbuttsApp();
    const auto r = run(robotTrace(), *app, Strategy::AlwaysAwake);
    EXPECT_NEAR(r.averagePowerMw, 323.0, 1.0);
    EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST_F(SimOrdering, OracleIsCheapestAndPerfect)
{
    const auto app = apps::makeHeadbuttsApp();
    const auto trace = robotTrace();
    const auto oracle = run(trace, *app, Strategy::Oracle);
    EXPECT_DOUBLE_EQ(oracle.recall, 1.0);
    EXPECT_DOUBLE_EQ(oracle.precision, 1.0);

    for (Strategy s : {Strategy::AlwaysAwake, Strategy::DutyCycling,
                       Strategy::Batching, Strategy::PredefinedActivity,
                       Strategy::Sidewinder}) {
        EXPECT_GE(run(trace, *app, s).averagePowerMw,
                  oracle.averagePowerMw)
            << strategyName(s, 10.0);
    }
}

TEST_F(SimOrdering, SidewinderKeepsFullRecallForRareEvents)
{
    const auto app = apps::makeHeadbuttsApp();
    const auto r = run(robotTrace(), *app, Strategy::Sidewinder);
    EXPECT_DOUBLE_EQ(r.recall, 1.0);
    EXPECT_EQ(r.mcuName, "MSP430");
    EXPECT_LT(r.averagePowerMw, 100.0);
}

TEST_F(SimOrdering, SidewinderBeatsPredefinedForRareEvents)
{
    // Section 5.3: PA consumes several times more power than
    // Sidewinder for infrequent events (headbutts, transitions).
    const auto app = apps::makeHeadbuttsApp();
    const auto trace = robotTrace(0.5, 5);
    const auto pa = run(trace, *app, Strategy::PredefinedActivity);
    const auto sw = run(trace, *app, Strategy::Sidewinder);
    EXPECT_DOUBLE_EQ(pa.recall, 1.0);
    EXPECT_GT(pa.averagePowerMw, 1.5 * sw.averagePowerMw);
}

TEST_F(SimOrdering, ShortDutyCyclesCostMoreThanAlwaysAwake)
{
    // Section 5.4: a 2 s sleep interval consumed *more* than Always
    // Awake because of transition energy.
    const auto app = apps::makeStepsApp();
    const auto trace = robotTrace(0.9, 23);
    const auto dc2 = run(trace, *app, Strategy::DutyCycling, 2.0);
    EXPECT_GT(dc2.averagePowerMw, 300.0);
}

TEST_F(SimOrdering, DutyCyclingRecallDropsWithInterval)
{
    // Use a busy trace (10% idle) so there are many headbutts to
    // miss, as in Figure 6 of the paper.
    const auto app = apps::makeHeadbuttsApp();
    const auto trace = robotTrace(0.1, 31);
    ASSERT_GE(trace.eventsOfType(app->eventType()).size(), 3u);
    const auto dc2 = run(trace, *app, Strategy::DutyCycling, 2.0);
    const auto dc30 = run(trace, *app, Strategy::DutyCycling, 30.0);
    EXPECT_LE(dc30.recall, dc2.recall);
    EXPECT_LT(dc30.recall, 1.0);
    EXPECT_LT(dc30.averagePowerMw, dc2.averagePowerMw);
}

TEST_F(SimOrdering, BatchingKeepsRecallButAddsLatency)
{
    const auto app = apps::makeHeadbuttsApp();
    const auto trace = robotTrace(0.1, 31);
    ASSERT_GE(trace.eventsOfType(app->eventType()).size(), 3u);
    const auto ba = run(trace, *app, Strategy::Batching, 10.0);
    EXPECT_DOUBLE_EQ(ba.recall, 1.0);
    EXPECT_GT(ba.meanDetectionLatencySeconds, 1.0);

    const auto sw = run(trace, *app, Strategy::Sidewinder);
    EXPECT_LT(sw.meanDetectionLatencySeconds,
              ba.meanDetectionLatencySeconds);
}

TEST_F(SimOrdering, SidewinderNearOracleForRareEvents)
{
    // Section 5.2: >= ~90% of available savings.
    const auto app = apps::makeHeadbuttsApp();
    const auto trace = robotTrace(0.9, 47);
    const auto aa = run(trace, *app, Strategy::AlwaysAwake);
    const auto oracle = run(trace, *app, Strategy::Oracle);
    const auto sw = run(trace, *app, Strategy::Sidewinder);
    const double fraction = metrics::savingsFraction(
        aa.averagePowerMw, sw.averagePowerMw, oracle.averagePowerMw);
    EXPECT_GE(fraction, 0.85);
}


TEST_F(SimOrdering, FpgaBackendCutsSidewinderHubPower)
{
    const auto app = apps::makeHeadbuttsApp();
    const auto trace = robotTrace();

    SimConfig mcu_config;
    mcu_config.strategy = Strategy::Sidewinder;
    const auto mcu = simulate(trace, *app, mcu_config);

    SimConfig fpga_config = mcu_config;
    fpga_config.hubBackend = HubBackend::Fpga;
    const auto fpga = simulate(trace, *app, fpga_config);

    EXPECT_EQ(fpga.mcuName, "iCE40-hub");
    EXPECT_DOUBLE_EQ(fpga.recall, mcu.recall);
    EXPECT_LT(fpga.hubMw, mcu.hubMw);
    EXPECT_LT(fpga.averagePowerMw, mcu.averagePowerMw);
}

TEST_F(SimOrdering, MissingChannelThrows)
{
    const auto app = apps::makeSirenApp(); // needs AUDIO
    EXPECT_THROW(run(robotTrace(), *app, Strategy::Sidewinder),
                 ConfigError);
}


TEST(Calibrate, ReportsWhenFullRecallUnattainable)
{
    // Candidates so insensitive that even the best misses events: the
    // sweep must say so and fall back to the most sensitive one.
    const auto app = apps::makeHeadbuttsApp();
    std::vector<trace::Trace> traces = {robotTrace(0.1, 61)};
    ASSERT_FALSE(traces[0].eventsOfType(app->eventType()).empty());
    const auto result =
        calibratePredefinedThreshold(traces, *app, {50.0, 80.0});
    EXPECT_FALSE(result.achievedFullRecall);
    EXPECT_DOUBLE_EQ(result.threshold, 50.0);
}

TEST(Calibrate, PicksHighestFullRecallThreshold)
{
    const auto app = apps::makeHeadbuttsApp();
    std::vector<trace::Trace> traces = {robotTrace(0.5, 61)};
    const auto result = calibratePredefinedThreshold(
        traces, *app, {0.2, 0.5, 1.0, 2.0, 5.0});
    EXPECT_TRUE(result.achievedFullRecall);
    EXPECT_GT(result.threshold, 0.0);
    EXPECT_GT(result.averagePowerMw, 0.0);

    EXPECT_THROW(calibratePredefinedThreshold({}, *app, {1.0}),
                 ConfigError);
    EXPECT_THROW(calibratePredefinedThreshold(traces, *app, {}),
                 ConfigError);
}

} // namespace
} // namespace sidewinder::sim
