/**
 * @file
 * Unit tests for the support module: ring buffer, RNG determinism,
 * and logging levels.
 */

#include <gtest/gtest.h>

#include "support/error.h"
#include "support/logging.h"
#include "support/ring_buffer.h"
#include "support/rng.h"

namespace sidewinder {
namespace {

TEST(RingBuffer, RejectsZeroCapacity)
{
    EXPECT_THROW(RingBuffer<int>(0), ConfigError);
}

TEST(RingBuffer, StartsEmpty)
{
    RingBuffer<int> buf(4);
    EXPECT_TRUE(buf.empty());
    EXPECT_FALSE(buf.full());
    EXPECT_EQ(buf.size(), 0u);
    EXPECT_EQ(buf.capacity(), 4u);
}

TEST(RingBuffer, FillsInOrder)
{
    RingBuffer<int> buf(3);
    buf.push(1);
    buf.push(2);
    EXPECT_EQ(buf.size(), 2u);
    EXPECT_EQ(buf[0], 1);
    EXPECT_EQ(buf[1], 2);
    EXPECT_EQ(buf.front(), 1);
    EXPECT_EQ(buf.back(), 2);
}

TEST(RingBuffer, EvictsOldestWhenFull)
{
    RingBuffer<int> buf(3);
    for (int i = 1; i <= 5; ++i)
        buf.push(i);
    EXPECT_TRUE(buf.full());
    EXPECT_EQ(buf.size(), 3u);
    EXPECT_EQ(buf[0], 3);
    EXPECT_EQ(buf[1], 4);
    EXPECT_EQ(buf[2], 5);
}

TEST(RingBuffer, SnapshotIsOldestFirst)
{
    RingBuffer<int> buf(3);
    for (int i = 1; i <= 4; ++i)
        buf.push(i);
    const auto snap = buf.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0], 2);
    EXPECT_EQ(snap[2], 4);
}

TEST(RingBuffer, ClearResets)
{
    RingBuffer<int> buf(2);
    buf.push(7);
    buf.clear();
    EXPECT_TRUE(buf.empty());
    buf.push(9);
    EXPECT_EQ(buf.front(), 9);
}

TEST(RingBuffer, OutOfRangeIndexThrows)
{
    RingBuffer<int> buf(2);
    buf.push(1);
    EXPECT_THROW(buf[1], InternalError);
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.uniform(0.0, 1.0) != b.uniform(0.0, 1.0);
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRespectsBounds)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    Rng rng(7);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, WeightedIndexSkipsZeroWeights)
{
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
        const auto idx = rng.weightedIndex({0.0, 1.0, 0.0});
        EXPECT_EQ(idx, 1u);
    }
}

TEST(Rng, GaussianRoughlyCentered)
{
    Rng rng(13);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(5.0, 1.0);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, ForkProducesIndependentStream)
{
    Rng a(99);
    Rng child = a.fork();
    // Child stream differs from the parent's continued stream.
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.uniform(0.0, 1.0) != child.uniform(0.0, 1.0);
    EXPECT_TRUE(any_diff);
}

TEST(Logging, LevelGates)
{
    const LogLevel old_level = logLevel();
    setLogLevel(LogLevel::Error);
    EXPECT_EQ(logLevel(), LogLevel::Error);
    // Should not crash / emit below threshold.
    inform("suppressed");
    warn("suppressed");
    setLogLevel(old_level);
}

} // namespace
} // namespace sidewinder
