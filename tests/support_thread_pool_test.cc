/**
 * @file
 * Unit tests for support::ThreadPool: range handling, result
 * ordering, exception propagation, nested-parallelism fallback, and
 * the SW_THREADS sizing override.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.h"

namespace sidewinder::support {
namespace {

TEST(ThreadPool, EmptyRangeRunsNothing)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.parallelFor(0, 0, [&](std::size_t) { ++calls; });
    pool.parallelFor(5, 5, [&](std::size_t) { ++calls; });
    // A reversed range is empty, not an error.
    pool.parallelFor(7, 3, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleItemRuns)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    std::size_t seen = 99;
    pool.parallelFor(3, 4, [&](std::size_t i) {
        ++calls;
        seen = i;
    });
    EXPECT_EQ(calls.load(), 1);
    EXPECT_EQ(seen, 3u);
}

TEST(ThreadPool, RangeSmallerThanWorkerCount)
{
    ThreadPool pool(8);
    // Each index executed exactly once (disjoint slots, no locks).
    std::vector<int> hits(3, 0);
    pool.parallelFor(0, hits.size(),
                     [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, EveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<int> hits(1000, 0);
    pool.parallelFor(0, hits.size(),
                     [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder)
{
    ThreadPool pool(4);
    const auto out = pool.parallelMap(
        100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, WorkerExceptionSurfacesToCaller)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(0, 100,
                                  [](std::size_t i) {
                                      if (i == 37)
                                          throw std::runtime_error(
                                              "cell 37 failed");
                                  }),
                 std::runtime_error);
    // The pool stays usable after a failed job.
    std::atomic<int> calls{0};
    pool.parallelFor(0, 10, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 10);
}

TEST(ThreadPool, SingleThreadPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::vector<int> hits(16, 0);
    pool.parallelFor(0, hits.size(),
                     [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock)
{
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    // The inner parallelFor on the same pool must fall back to
    // inline execution on whichever thread runs the outer body.
    pool.parallelFor(0, 4, [&](std::size_t) {
        pool.parallelFor(0, 4, [&](std::size_t) { ++calls; });
    });
    EXPECT_EQ(calls.load(), 16);
}

TEST(ThreadPool, NestedExceptionStillPropagates)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.parallelFor(0, 4,
                         [&](std::size_t) {
                             pool.parallelFor(
                                 0, 4, [&](std::size_t i) {
                                     if (i == 2)
                                         throw std::runtime_error(
                                             "inner");
                                 });
                         }),
        std::runtime_error);
}

TEST(ThreadPool, SwThreadsOverridesDefault)
{
    const char *old = std::getenv("SW_THREADS");
    const std::string saved = old ? old : "";

    ::setenv("SW_THREADS", "3", 1);
    EXPECT_EQ(ThreadPool::defaultThreadCount(), 3u);
    ThreadPool pool;
    EXPECT_EQ(pool.threadCount(), 3u);

    // Garbage and non-positive values fall back to hardware.
    ::setenv("SW_THREADS", "abc", 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);
    ::setenv("SW_THREADS", "0", 1);
    EXPECT_GE(ThreadPool::defaultThreadCount(), 1u);

    if (old)
        ::setenv("SW_THREADS", saved.c_str(), 1);
    else
        ::unsetenv("SW_THREADS");
}

} // namespace
} // namespace sidewinder::support
