/**
 * @file
 * Tests for trace augmentation (noise / gain / offset / decimation)
 * and the robustness of the wake-up conditions under them.
 */

#include <gtest/gtest.h>

#include "apps/apps.h"
#include "hub/engine.h"
#include "metrics/events.h"
#include "support/error.h"
#include "trace/augment.h"
#include "trace/robot_gen.h"

namespace sidewinder::trace {
namespace {

Trace
smallRobotTrace()
{
    RobotRunConfig config;
    config.idleFraction = 0.5;
    config.durationSeconds = 120.0;
    config.seed = 42;
    return generateRobotRun(config);
}

TEST(Augment, NoisePreservesShapeAndEvents)
{
    const Trace base = smallRobotTrace();
    const Trace noisy = addGaussianNoise(base, 0.2, 9);
    EXPECT_EQ(noisy.sampleCount(), base.sampleCount());
    EXPECT_EQ(noisy.events.size(), base.events.size());
    EXPECT_NE(noisy.channels[0][100], base.channels[0][100]);
    EXPECT_THROW(addGaussianNoise(base, -1.0, 9), ConfigError);
}

TEST(Augment, ZeroNoiseIsIdentity)
{
    const Trace base = smallRobotTrace();
    const Trace same = addGaussianNoise(base, 0.0, 9);
    EXPECT_EQ(same.channels, base.channels);
}

TEST(Augment, GainScalesSamples)
{
    const Trace base = smallRobotTrace();
    const Trace scaled = applyGain(base, 2.0);
    EXPECT_DOUBLE_EQ(scaled.channels[2][50],
                     2.0 * base.channels[2][50]);
}

TEST(Augment, OffsetShiftsPerChannel)
{
    const Trace base = smallRobotTrace();
    const Trace shifted = applyOffset(base, {1.0, -1.0, 0.5});
    EXPECT_DOUBLE_EQ(shifted.channels[0][10],
                     base.channels[0][10] + 1.0);
    EXPECT_DOUBLE_EQ(shifted.channels[1][10],
                     base.channels[1][10] - 1.0);
    EXPECT_THROW(applyOffset(base, {1.0}), ConfigError);
}

TEST(Augment, DecimationHalvesRateKeepsDuration)
{
    const Trace base = smallRobotTrace();
    const Trace half = decimate(base, 2);
    EXPECT_DOUBLE_EQ(half.sampleRateHz, base.sampleRateHz / 2.0);
    EXPECT_NEAR(half.durationSeconds(), base.durationSeconds(), 0.1);
    EXPECT_EQ(half.sampleCount(),
              (base.sampleCount() + 1) / 2);
    EXPECT_THROW(decimate(base, 0), ConfigError);
}

/** Wake-condition recall survives moderate extra sensor noise. */
TEST(Robustness, StepsWakeSurvivesModerateNoise)
{
    const auto app = apps::makeStepsApp();
    const Trace noisy =
        addGaussianNoise(smallRobotTrace(), 0.15, 3);

    hub::Engine engine(app->channels());
    engine.addCondition(1, app->wakeCondition().compile());
    std::vector<double> triggers;
    for (std::size_t i = 0; i < noisy.sampleCount(); ++i) {
        engine.pushSamples({noisy.channels[0][i], noisy.channels[1][i],
                            noisy.channels[2][i]},
                           noisy.timeOf(i));
        for (const auto &event : engine.drainWakeEvents())
            triggers.push_back(event.timestamp);
    }
    const auto result = metrics::matchEventsCoalesced(
        noisy.eventsOfType(event_type::step), triggers, 0.4);
    EXPECT_GE(result.recall(), 0.98);
}

/** Large gain error breaks the fixed acceptance band, as expected. */
TEST(Robustness, HeadbuttsWakeBreaksUnderLargeGainError)
{
    const auto app = apps::makeHeadbuttsApp();
    // A busy trace guarantees headbutts; 45% low gain moves the
    // -4.3..-6.2 dips mostly out of the detector's [-6.75, -3.75]
    // band.
    RobotRunConfig config;
    config.idleFraction = 0.1;
    config.durationSeconds = 180.0;
    config.seed = 42;
    const Trace miscalibrated =
        applyGain(generateRobotRun(config), 0.55);

    hub::Engine engine(app->channels());
    engine.addCondition(1, app->wakeCondition().compile());
    std::vector<double> triggers;
    for (std::size_t i = 0; i < miscalibrated.sampleCount(); ++i) {
        engine.pushSamples({miscalibrated.channels[0][i],
                            miscalibrated.channels[1][i],
                            miscalibrated.channels[2][i]},
                           miscalibrated.timeOf(i));
        for (const auto &event : engine.drainWakeEvents())
            triggers.push_back(event.timestamp);
    }
    const auto truth =
        miscalibrated.eventsOfType(event_type::headbutt);
    if (truth.empty())
        GTEST_SKIP() << "no headbutts in this trace";
    const auto result =
        metrics::matchEventsCoalesced(truth, triggers, 0.5);
    EXPECT_LT(result.recall(), 1.0);
}

} // namespace
} // namespace sidewinder::trace
