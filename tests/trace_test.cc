/**
 * @file
 * Tests for trace types, CSV persistence, and the three synthetic
 * generators (robot, human, audio).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "trace/audio_gen.h"
#include "trace/csv.h"
#include "trace/human_gen.h"
#include "trace/robot_gen.h"
#include "trace/types.h"
#include "support/error.h"

namespace sidewinder::trace {
namespace {

Trace
tinyTrace()
{
    Trace t;
    t.name = "tiny";
    t.sampleRateHz = 10.0;
    t.channelNames = {"A", "B"};
    t.channels = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    t.events = {{"ev", 0.05, 0.15}};
    return t;
}

TEST(TraceType, BasicAccessors)
{
    const Trace t = tinyTrace();
    EXPECT_EQ(t.sampleCount(), 3u);
    EXPECT_DOUBLE_EQ(t.durationSeconds(), 0.3);
    EXPECT_DOUBLE_EQ(t.timeOf(2), 0.2);
    EXPECT_EQ(t.channelIndex("B"), 1u);
    EXPECT_THROW(t.channelIndex("C"), ConfigError);
    EXPECT_EQ(t.eventsOfType("ev").size(), 1u);
    EXPECT_NEAR(t.eventSeconds("ev"), 0.1, 1e-12);
}

TEST(TraceType, InvariantChecks)
{
    Trace t = tinyTrace();
    t.channels[1].pop_back();
    EXPECT_THROW(t.checkInvariants(), InternalError);

    t = tinyTrace();
    t.events[0].endTime = 0.01; // end < start
    EXPECT_THROW(t.checkInvariants(), InternalError);
}

TEST(Csv, RoundTrips)
{
    const Trace original = tinyTrace();
    std::stringstream buffer;
    saveCsv(original, buffer);
    const Trace loaded = loadCsv(buffer);

    EXPECT_EQ(loaded.name, original.name);
    EXPECT_DOUBLE_EQ(loaded.sampleRateHz, original.sampleRateHz);
    EXPECT_EQ(loaded.channelNames, original.channelNames);
    ASSERT_EQ(loaded.sampleCount(), original.sampleCount());
    for (std::size_t c = 0; c < 2; ++c)
        for (std::size_t i = 0; i < 3; ++i)
            EXPECT_DOUBLE_EQ(loaded.channels[c][i],
                             original.channels[c][i]);
    ASSERT_EQ(loaded.events.size(), 1u);
    EXPECT_EQ(loaded.events[0].type, "ev");
}

TEST(Csv, RejectsMalformedInput)
{
    std::stringstream no_data("name=x\nrate=10\nchannels=A\n");
    EXPECT_THROW(loadCsv(no_data), ParseError);

    std::stringstream bad_row(
        "name=x\nrate=10\nchannels=A,B\ndata\n1.0\n");
    EXPECT_THROW(loadCsv(bad_row), ParseError);

    std::stringstream bad_key("wat=x\ndata\n");
    EXPECT_THROW(loadCsv(bad_key), ParseError);
}

TEST(RobotGen, ProducesRequestedShape)
{
    RobotRunConfig config;
    config.idleFraction = 0.5;
    config.durationSeconds = 120.0;
    config.seed = 7;
    const Trace t = generateRobotRun(config);

    t.checkInvariants();
    EXPECT_EQ(t.channelNames,
              (std::vector<std::string>{"ACC_X", "ACC_Y", "ACC_Z"}));
    EXPECT_NEAR(t.durationSeconds(), 120.0, 0.5);
    EXPECT_FALSE(t.eventsOfType(event_type::step).empty());
    EXPECT_FALSE(t.eventsOfType(event_type::transition).empty());
}

TEST(RobotGen, IdleFractionRoughlyHonored)
{
    RobotRunConfig config;
    config.idleFraction = 0.9;
    config.durationSeconds = 400.0;
    config.seed = 3;
    const Trace t = generateRobotRun(config);

    double active = 0.0;
    for (const auto &ev : t.eventsOfType(event_type::activeSegment))
        active += ev.duration();
    EXPECT_LT(active / t.durationSeconds(), 0.2);
}

TEST(RobotGen, ActivityMixFollowsPaperShares)
{
    RobotRunConfig config;
    config.idleFraction = 0.1;
    config.durationSeconds = 600.0;
    config.seed = 11;
    const Trace t = generateRobotRun(config);

    const double walk = t.eventSeconds(event_type::walkSegment);
    const double trans = t.eventSeconds(event_type::transition);
    const double butts = t.eventSeconds(event_type::headbutt);
    const double active = walk + trans + butts;
    ASSERT_GT(active, 0.0);
    // Paper: 73% / 24% / 3% of active time.
    EXPECT_NEAR(walk / active, 0.73, 0.12);
    EXPECT_NEAR(trans / active, 0.24, 0.12);
    EXPECT_NEAR(butts / active, 0.03, 0.03);
}

TEST(RobotGen, DeterministicForSameSeed)
{
    RobotRunConfig config;
    config.durationSeconds = 60.0;
    config.seed = 5;
    const Trace a = generateRobotRun(config);
    const Trace b = generateRobotRun(config);
    ASSERT_EQ(a.sampleCount(), b.sampleCount());
    EXPECT_EQ(a.channels[0], b.channels[0]);
    EXPECT_EQ(a.events.size(), b.events.size());
}

TEST(RobotGen, CorpusHasPaperStructure)
{
    const auto corpus = generateRobotCorpus(30.0, 1);
    EXPECT_EQ(corpus.size(), 18u); // 9 + 6 + 3
    EXPECT_EQ(robotGroupRunCount(1), 9);
    EXPECT_EQ(robotGroupRunCount(2), 6);
    EXPECT_EQ(robotGroupRunCount(3), 3);
    EXPECT_DOUBLE_EQ(robotGroupIdleFraction(2), 0.5);
    EXPECT_THROW(robotGroupIdleFraction(4), ConfigError);
}

TEST(RobotGen, RejectsBadConfig)
{
    RobotRunConfig config;
    config.idleFraction = 1.5;
    EXPECT_THROW(generateRobotRun(config), ConfigError);
}

TEST(HumanGen, WalkFractionInPaperRange)
{
    for (auto scenario : {HumanScenario::Commute, HumanScenario::Retail,
                          HumanScenario::Office}) {
        HumanTraceConfig config;
        config.scenario = scenario;
        config.durationSeconds = 600.0;
        config.seed = 21;
        const Trace t = generateHumanTrace(config);
        t.checkInvariants();
        const double walk =
            t.eventSeconds(event_type::walkSegment) /
            t.durationSeconds();
        // Paper: between 20% and 37% walking.
        EXPECT_GE(walk, 0.10) << humanScenarioName(scenario);
        EXPECT_LE(walk, 0.45) << humanScenarioName(scenario);
    }
}

TEST(HumanGen, CorpusHasThreeSubjects)
{
    const auto corpus = generateHumanCorpus(30.0, 2);
    ASSERT_EQ(corpus.size(), 3u);
    EXPECT_NE(corpus[0].name, corpus[1].name);
}

TEST(AudioGen, EventBudgetsRoughlyHonored)
{
    AudioTraceConfig config;
    config.durationSeconds = 300.0;
    config.seed = 9;
    const Trace t = generateAudioTrace(config);
    t.checkInvariants();
    EXPECT_EQ(t.channelNames, (std::vector<std::string>{"AUDIO"}));

    const double total = t.durationSeconds();
    EXPECT_NEAR(t.eventSeconds(event_type::siren) / total, 0.02,
                0.02);
    EXPECT_NEAR(t.eventSeconds(event_type::music) / total, 0.05,
                0.05);
    EXPECT_NEAR(t.eventSeconds(event_type::speech) / total, 0.05,
                0.04);
}

TEST(AudioGen, PhrasesLiveInsideSpeech)
{
    AudioTraceConfig config;
    config.durationSeconds = 600.0;
    config.seed = 4;
    config.phraseProbability = 1.0; // every speech segment
    const Trace t = generateAudioTrace(config);

    const auto phrases = t.eventsOfType(event_type::phrase);
    const auto speech = t.eventsOfType(event_type::speech);
    ASSERT_FALSE(phrases.empty());
    EXPECT_EQ(phrases.size(), speech.size());
    for (const auto &p : phrases) {
        bool inside = false;
        for (const auto &s : speech)
            inside |= p.startTime >= s.startTime - 1e-6 &&
                      p.endTime <= s.endTime + 1e-6;
        EXPECT_TRUE(inside);
    }
}

TEST(AudioGen, RejectsBadConfig)
{
    AudioTraceConfig config;
    config.sampleRateHz = 1000.0; // sirens above Nyquist
    EXPECT_THROW(generateAudioTrace(config), ConfigError);

    config = {};
    config.sirenFraction = 0.5;
    config.musicFraction = 0.3;
    config.speechFraction = 0.3;
    EXPECT_THROW(generateAudioTrace(config), ConfigError);
}

TEST(AudioGen, CorpusCoversThreeEnvironments)
{
    const auto corpus = generateAudioCorpus(60.0, 3);
    ASSERT_EQ(corpus.size(), 3u);
    EXPECT_NE(corpus[0].name.find("office"), std::string::npos);
    EXPECT_NE(corpus[1].name.find("coffeeshop"), std::string::npos);
    EXPECT_NE(corpus[2].name.find("outdoors"), std::string::npos);
}

} // namespace
} // namespace sidewinder::trace
