/**
 * @file
 * Tests for the reliable transport layer: wrap/unwrap encoding,
 * stop-and-wait ack/retransmit behavior, duplicate suppression, the
 * give-up link-down verdict, and the frame-decoder corruption
 * property (any byte corruption yields a CRC reject or a
 * byte-identical frame — never a silently wrong payload).
 */

#include <gtest/gtest.h>

#include "support/error.h"
#include "support/rng.h"
#include "transport/frame.h"
#include "transport/link.h"
#include "transport/messages.h"
#include "transport/reliable.h"

namespace sidewinder::transport {
namespace {

Frame
configFrame(int id)
{
    return encodeConfigPush({id, "ACC_X -> movingAvg(id=1, params={4});\n"
                                 "1 -> OUT;\n"});
}

/** Decode everything deliverable on @p rx by time @p now. */
std::vector<Frame>
drainFrames(UartLink &rx, FrameDecoder &decoder, double now)
{
    decoder.feed(rx.receive(now));
    std::vector<Frame> frames;
    while (auto frame = decoder.poll())
        frames.push_back(*frame);
    return frames;
}

TEST(ReliableCodec, DataRoundtrip)
{
    const Frame inner = configFrame(42);
    const Frame wrapped = encodeReliableData(777, inner, 5);
    EXPECT_EQ(wrapped.type, MessageType::Reliable);
    const ReliableData data = decodeReliableData(wrapped);
    EXPECT_EQ(data.seq, 777);
    EXPECT_EQ(data.configEpoch, 5u);
    EXPECT_EQ(data.inner, inner);

    // Epoch defaults to 0 — the unversioned stamp.
    EXPECT_EQ(decodeReliableData(encodeReliableData(1, inner)).configEpoch,
              0u);
}

TEST(ReliableCodec, AckRoundtrip)
{
    EXPECT_EQ(decodeLinkAck(encodeLinkAck(0)), 0);
    EXPECT_EQ(decodeLinkAck(encodeLinkAck(65535)), 65535);
}

TEST(ReliableCodec, HeartbeatRoundtrip)
{
    HeartbeatMessage beat;
    beat.bootId = 3;
    beat.uptimeSeconds = 12.5;
    const auto decoded = decodeHeartbeat(encodeHeartbeat(beat));
    EXPECT_EQ(decoded.bootId, 3u);
    EXPECT_DOUBLE_EQ(decoded.uptimeSeconds, 12.5);
}

TEST(ReliableCodec, MalformedPayloadsThrow)
{
    Frame bad;
    bad.type = MessageType::Reliable;
    bad.payload = {0x01};
    EXPECT_THROW(decodeReliableData(bad), TransportError);

    bad.type = MessageType::LinkAck;
    bad.payload = {0x01, 0x02, 0x03};
    EXPECT_THROW(decodeLinkAck(bad), TransportError);

    EXPECT_THROW(decodeHeartbeat(configFrame(1)), TransportError);
}

TEST(ReliableCodec, WireBytesMatchEncoding)
{
    const Frame inner = configFrame(9);
    const Frame wrapped = encodeReliableData(0, inner);
    EXPECT_EQ(reliableWireBytes(inner), encodeFrame(wrapped).size());
    EXPECT_EQ(configPushWireBytes({9, "hello"}),
              encodeFrame(encodeConfigPush({9, "hello"})).size());
}

TEST(ReliableEndpoint, DeliversAndAcksOverCleanLink)
{
    LinkPair link(115200.0);
    ReliableEndpoint sender(link.phoneToHub());
    ReliableEndpoint receiver(link.hubToPhone());

    const Frame inner = configFrame(1);
    sender.sendFrame(inner, 0.0);

    FrameDecoder rx_decoder;
    FrameDecoder tx_decoder;
    std::vector<Frame> delivered;
    for (int step = 1; step <= 50; ++step) {
        const double t = step * 0.01;
        for (const auto &f :
             drainFrames(link.phoneToHub(), rx_decoder, t))
            if (auto got = receiver.onFrame(f, t))
                delivered.push_back(*got);
        for (const auto &f :
             drainFrames(link.hubToPhone(), tx_decoder, t))
            sender.onFrame(f, t);
        sender.tick(t);
    }

    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(delivered[0], inner);
    EXPECT_EQ(sender.stats().framesSent, 1u);
    EXPECT_EQ(sender.stats().retransmits, 0u);
    EXPECT_EQ(sender.stats().acksReceived, 1u);
    EXPECT_EQ(receiver.stats().acksSent, 1u);
    EXPECT_EQ(sender.queuedFrames(), 0u);
    EXPECT_FALSE(sender.linkDown());
}

TEST(ReliableEndpoint, RetransmitsAfterFrameLoss)
{
    LinkPair link(115200.0);
    // Drop exactly the first transmission.
    int sent = 0;
    link.phoneToHub().setFrameDropper([&sent]() { return ++sent == 1; });

    ReliableEndpoint sender(link.phoneToHub());
    ReliableEndpoint receiver(link.hubToPhone());
    sender.sendFrame(configFrame(1), 0.0);

    FrameDecoder rx_decoder;
    FrameDecoder tx_decoder;
    std::vector<Frame> delivered;
    for (int step = 1; step <= 200; ++step) {
        const double t = step * 0.01;
        for (const auto &f :
             drainFrames(link.phoneToHub(), rx_decoder, t))
            if (auto got = receiver.onFrame(f, t))
                delivered.push_back(*got);
        for (const auto &f :
             drainFrames(link.hubToPhone(), tx_decoder, t))
            sender.onFrame(f, t);
        sender.tick(t);
    }

    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(sender.stats().retransmits, 1u);
    EXPECT_EQ(link.phoneToHub().droppedFrames(), 1u);
    EXPECT_FALSE(sender.linkDown());
}

TEST(ReliableEndpoint, SuppressesDuplicateAfterLostAck)
{
    LinkPair link(115200.0);
    // Drop exactly the first ack the receiver sends back.
    int acks = 0;
    link.hubToPhone().setFrameDropper([&acks]() { return ++acks == 1; });

    ReliableEndpoint sender(link.phoneToHub());
    ReliableEndpoint receiver(link.hubToPhone());
    sender.sendFrame(configFrame(1), 0.0);

    FrameDecoder rx_decoder;
    FrameDecoder tx_decoder;
    std::vector<Frame> delivered;
    for (int step = 1; step <= 300; ++step) {
        const double t = step * 0.01;
        for (const auto &f :
             drainFrames(link.phoneToHub(), rx_decoder, t))
            if (auto got = receiver.onFrame(f, t))
                delivered.push_back(*got);
        for (const auto &f :
             drainFrames(link.hubToPhone(), tx_decoder, t))
            sender.onFrame(f, t);
        sender.tick(t);
    }

    // The retransmitted copy reached the receiver twice; the
    // application saw it once.
    ASSERT_EQ(delivered.size(), 1u);
    EXPECT_EQ(receiver.stats().duplicatesDropped, 1u);
    EXPECT_GE(receiver.stats().acksSent, 2u);
    EXPECT_FALSE(sender.linkDown());
}

TEST(ReliableEndpoint, GivesUpAndLatchesLinkDown)
{
    LinkPair link(115200.0);
    link.phoneToHub().setFrameDropper([]() { return true; });

    ReliableConfig config;
    config.maxAttempts = 3;
    config.ackTimeoutSeconds = 0.02;
    config.maxBackoffSeconds = 0.05;
    ReliableEndpoint sender(link.phoneToHub(), config);

    sender.sendFrame(configFrame(1), 0.0);
    sender.sendFrame(configFrame(2), 0.0);
    for (int step = 1; step <= 200; ++step)
        sender.tick(step * 0.01);

    EXPECT_TRUE(sender.linkDown());
    EXPECT_EQ(sender.stats().framesLost, 2u);
    EXPECT_EQ(sender.queuedFrames(), 0u);
    // 3 attempts per frame: 1 first transmission + 2 retransmits.
    EXPECT_EQ(sender.stats().retransmits, 4u);
}

TEST(ReliableEndpoint, BoundedQueueTailDrops)
{
    LinkPair link(115200.0);
    ReliableConfig config;
    config.maxQueueDepth = 4;
    ReliableEndpoint sender(link.phoneToHub(), config);

    for (int i = 0; i < 10; ++i)
        sender.sendFrame(configFrame(i), 0.0);

    EXPECT_EQ(sender.queuedFrames(), 4u);
    EXPECT_EQ(sender.stats().queueOverflows, 6u);
}

TEST(ReliableEndpoint, ResetClearsDedupAndDownLatch)
{
    LinkPair link(115200.0);
    ReliableEndpoint receiver(link.hubToPhone());

    // Seq 0 delivered once, duplicate suppressed.
    EXPECT_TRUE(
        receiver.onFrame(encodeReliableData(0, configFrame(1)), 0.0)
            .has_value());
    EXPECT_FALSE(
        receiver.onFrame(encodeReliableData(0, configFrame(1)), 0.1)
            .has_value());

    // After reset (e.g. peer rebooted), a fresh peer's seq 0 must be
    // delivered again, not swallowed by stale dedup state.
    receiver.reset();
    EXPECT_TRUE(
        receiver.onFrame(encodeReliableData(0, configFrame(1)), 0.2)
            .has_value());
}

TEST(ReliableEndpoint, StaleEpochRetransmitIsRefusedNotDelivered)
{
    LinkPair link(115200.0);
    ReliableEndpoint receiver(link.hubToPhone());
    receiver.setMinimumEpoch(3);

    // A delayed retransmit stamped with a superseded epoch: acked (so
    // the sender stops retrying) but refused with a distinct verdict —
    // not silently dropped, not delivered, not counted as a duplicate.
    DeliveryVerdict verdict{};
    EXPECT_FALSE(
        receiver.onFrame(encodeReliableData(0, configFrame(1), 2), 0.0,
                         &verdict)
            .has_value());
    EXPECT_EQ(verdict, DeliveryVerdict::StaleEpoch);
    EXPECT_EQ(receiver.stats().staleEpochFrames, 1u);
    EXPECT_EQ(receiver.stats().duplicatesDropped, 0u);
    EXPECT_EQ(receiver.stats().acksSent, 1u);

    // Current-epoch data on the same sequence still arrives fresh —
    // the stale frame must not have poisoned the dedup state.
    EXPECT_TRUE(
        receiver.onFrame(encodeReliableData(0, configFrame(1), 3), 0.1,
                         &verdict)
            .has_value());
    EXPECT_EQ(verdict, DeliveryVerdict::Delivered);

    // Unversioned (epoch 0) frames are never epoch-filtered.
    EXPECT_TRUE(
        receiver.onFrame(encodeReliableData(1, configFrame(2), 0), 0.2,
                         &verdict)
            .has_value());
    EXPECT_EQ(verdict, DeliveryVerdict::Delivered);

    // The filter survives reset() — that is the whole point: reset
    // clears the dedup state a delayed retransmit would otherwise
    // need to get past.
    receiver.reset();
    EXPECT_FALSE(
        receiver.onFrame(encodeReliableData(7, configFrame(1), 1), 0.3,
                         &verdict)
            .has_value());
    EXPECT_EQ(verdict, DeliveryVerdict::StaleEpoch);
    EXPECT_EQ(receiver.stats().staleEpochFrames, 2u);
}

TEST(ReliableEndpoint, NonReliableFramesPassThrough)
{
    LinkPair link(115200.0);
    ReliableEndpoint endpoint(link.phoneToHub());
    const Frame plain = configFrame(5);
    const auto out = endpoint.onFrame(plain, 0.0);
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, plain);
    EXPECT_EQ(endpoint.stats().acksSent, 0u);
}

// ---------------------------------------------------------------------
// Frame-decoder corruption property (ISSUE 4 satellite): any byte-level
// corruption of an encoded frame either fails the CRC (no frame, bytes
// counted as dropped) or resynchronizes to a byte-identical frame —
// never a silently wrong payload.
// ---------------------------------------------------------------------

TEST(FrameDecoderProperty, CorruptionNeverYieldsWrongPayload)
{
    Rng rng(0xC0FFEE);
    for (int trial = 0; trial < 500; ++trial) {
        // A payload with embedded SOF bytes, so resynchronization has
        // tempting false frame starts to trip over.
        WakeUpMessage message;
        message.conditionId = trial;
        message.timestamp = trial * 0.25;
        const int raw = 1 + static_cast<int>(rng.uniformInt(0, 30));
        for (int i = 0; i < raw; ++i)
            message.rawData.push_back(
                rng.chance(0.3) ? 126.0 : rng.uniform(-50.0, 50.0));
        const Frame original = encodeWakeUp(message);
        auto bytes = encodeFrame(original);

        const int flips = 1 + static_cast<int>(rng.uniformInt(0, 2));
        for (int f = 0; f < flips; ++f) {
            const auto pos = static_cast<std::size_t>(rng.uniformInt(
                0, static_cast<std::int64_t>(bytes.size()) - 1));
            const auto mask = static_cast<std::uint8_t>(
                rng.uniformInt(1, 255)); // nonzero: byte changes
            bytes[pos] ^= mask;
        }

        FrameDecoder decoder;
        decoder.feed(bytes);
        // Flush any candidate a corrupted header left pending (a
        // stalled receiver would do this via tickStall); rescanning
        // must not manufacture a wrong payload either.
        while (decoder.midFrame())
            decoder.resync();
        while (auto frame = decoder.poll())
            ASSERT_EQ(*frame, original)
                << "corrupted frame decoded to a different payload "
                   "(trial "
                << trial << ")";
    }
}

TEST(FrameDecoderProperty, ResynchronizesAfterMidStreamGarbage)
{
    Rng rng(0xFEED);
    for (int trial = 0; trial < 200; ++trial) {
        const Frame first = configFrame(trial);
        const Frame second = encodeLinkAck(
            static_cast<std::uint16_t>(trial));

        std::vector<std::uint8_t> stream = encodeFrame(first);
        // Mid-stream garbage burst, SOF bytes included.
        const int garbage = 1 + static_cast<int>(rng.uniformInt(0, 40));
        for (int i = 0; i < garbage; ++i)
            stream.push_back(static_cast<std::uint8_t>(
                rng.chance(0.2) ? 0x7E : rng.uniformInt(0, 255)));
        const auto tail = encodeFrame(second);
        stream.insert(stream.end(), tail.begin(), tail.end());

        FrameDecoder decoder;
        decoder.feed(stream);
        while (decoder.midFrame())
            decoder.resync();
        std::vector<Frame> decoded;
        while (auto frame = decoder.poll())
            decoded.push_back(*frame);

        // Both intact frames must surface; anything else decoded must
        // be one of them (garbage can only be rejected, not morph
        // into a new payload).
        ASSERT_GE(decoded.size(), 2u);
        EXPECT_EQ(decoded.front(), first);
        EXPECT_EQ(decoded.back(), second);
        for (const auto &frame : decoded)
            EXPECT_TRUE(frame == first || frame == second);
    }
}

} // namespace
} // namespace sidewinder::transport
