/**
 * @file
 * Unit tests for the transport layer: CRC, frame codec with fault
 * injection, message serialization, and UART timing.
 */

#include <gtest/gtest.h>

#include "support/error.h"
#include "support/rng.h"
#include "transport/crc.h"
#include "transport/frame.h"
#include "transport/link.h"
#include "transport/messages.h"

namespace sidewinder::transport {
namespace {

TEST(Crc16, KnownVector)
{
    // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
    const std::string text = "123456789";
    std::vector<std::uint8_t> data(text.begin(), text.end());
    EXPECT_EQ(crc16(data), 0x29B1);
}

TEST(Crc16, EmptyIsInit)
{
    EXPECT_EQ(crc16({}), 0xFFFF);
}

TEST(FrameCodec, RoundTripsPayload)
{
    Frame frame;
    frame.type = MessageType::WakeUp;
    frame.payload = {1, 2, 3, 0x7E, 0xFF, 0};

    FrameDecoder decoder;
    decoder.feed(encodeFrame(frame));
    const auto decoded = decoder.poll();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, frame);
    EXPECT_FALSE(decoder.poll().has_value());
    EXPECT_EQ(decoder.droppedBytes(), 0u);
}

TEST(FrameCodec, RoundTripsEmptyPayload)
{
    Frame frame;
    frame.type = MessageType::ConfigAck;

    FrameDecoder decoder;
    decoder.feed(encodeFrame(frame));
    const auto decoded = decoder.poll();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_TRUE(decoded->payload.empty());
}

TEST(FrameCodec, RejectsOversizedPayload)
{
    Frame frame;
    frame.payload.assign(maxPayloadBytes + 1, 0);
    EXPECT_THROW(encodeFrame(frame), TransportError);
}

TEST(FrameCodec, ResynchronizesAfterNoise)
{
    Frame frame;
    frame.type = MessageType::ConfigPush;
    frame.payload = {42, 43};

    FrameDecoder decoder;
    decoder.feed({0x00, 0x13, 0x37}); // line noise
    decoder.feed(encodeFrame(frame));
    const auto decoded = decoder.poll();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, frame);
    EXPECT_EQ(decoder.droppedBytes(), 3u);
}

TEST(FrameCodec, DropsCorruptedFrameButRecovers)
{
    Frame frame;
    frame.type = MessageType::WakeUp;
    frame.payload = {9, 9, 9, 9};

    auto corrupted = encodeFrame(frame);
    corrupted[5] ^= 0x40; // flip a payload bit -> CRC mismatch

    FrameDecoder decoder;
    decoder.feed(corrupted);
    EXPECT_FALSE(decoder.poll().has_value());
    EXPECT_GT(decoder.droppedBytes(), 0u);

    decoder.feed(encodeFrame(frame));
    const auto decoded = decoder.poll();
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, frame);
}

TEST(FrameCodec, SurvivesRandomNoiseBetweenFrames)
{
    Rng rng(17);
    FrameDecoder decoder;
    std::size_t delivered = 0;
    for (int round = 0; round < 50; ++round) {
        // Noise burst (may accidentally contain SOF bytes).
        const auto noise_len = rng.uniformInt(0, 20);
        for (long i = 0; i < noise_len; ++i)
            decoder.feed(
                static_cast<std::uint8_t>(rng.uniformInt(0, 255)));

        Frame frame;
        frame.type = MessageType::WakeUp;
        frame.payload = {static_cast<std::uint8_t>(round)};
        decoder.feed(encodeFrame(frame));
        while (auto f = decoder.poll()) {
            // Only count frames with our expected shape; noise can
            // theoretically fabricate a valid frame but CRC16 makes
            // that vanishingly rare within 50 rounds.
            if (f->type == MessageType::WakeUp &&
                f->payload.size() == 1)
                ++delivered;
        }
    }
    // Noise may eat the frame that follows it (the decoder may be
    // mid-"frame" when the real SOF arrives), but most must survive.
    EXPECT_GE(delivered, 25u);
}

TEST(Messages, ConfigPushRoundTrip)
{
    ConfigPushMessage message{7, "ACC_X -> movingAvg(id=1);\n"};
    const auto decoded = decodeConfigPush(encodeConfigPush(message));
    EXPECT_EQ(decoded.conditionId, 7);
    EXPECT_EQ(decoded.ilText, message.ilText);
}

TEST(Messages, RejectRoundTripPreservesReason)
{
    ConfigRejectMessage message{3, "capability exceeded"};
    const auto decoded =
        decodeConfigReject(encodeConfigReject(message));
    EXPECT_EQ(decoded.conditionId, 3);
    EXPECT_EQ(decoded.reason, "capability exceeded");
}

TEST(Messages, WakeUpRoundTripPreservesRawData)
{
    WakeUpMessage message;
    message.conditionId = 2;
    message.timestamp = 123.456;
    message.triggerValue = -6.5;
    message.rawData = {0.1, -0.2, 9.81};
    const auto decoded = decodeWakeUp(encodeWakeUp(message));
    EXPECT_EQ(decoded.conditionId, 2);
    EXPECT_DOUBLE_EQ(decoded.timestamp, 123.456);
    EXPECT_DOUBLE_EQ(decoded.triggerValue, -6.5);
    ASSERT_EQ(decoded.rawData.size(), 3u);
    EXPECT_DOUBLE_EQ(decoded.rawData[2], 9.81);
}

TEST(Messages, TypeMismatchThrows)
{
    const auto frame = encodeConfigAck({1});
    EXPECT_THROW(decodeWakeUp(frame), TransportError);
}

TEST(Messages, TruncatedPayloadThrows)
{
    auto frame = encodeWakeUp({1, 0.0, 0.0, {1.0, 2.0}});
    frame.payload.resize(frame.payload.size() - 4);
    EXPECT_THROW(decodeWakeUp(frame), TransportError);
}

TEST(UartLink, RejectsBadBaud)
{
    EXPECT_THROW(UartLink(0.0), TransportError);
}

TEST(UartLink, TransferTimeMatches8N1)
{
    UartLink link(115200.0);
    EXPECT_NEAR(link.transferSeconds(1152), 0.1, 1e-9);
    EXPECT_NEAR(link.bandwidthBitsPerSecond(), 92160.0, 1e-9);
}

TEST(UartLink, DeliversOnlyAfterSerializationDelay)
{
    UartLink link(1000.0); // 10 ms per byte
    link.send({1, 2, 3}, 0.0);
    EXPECT_TRUE(link.receive(0.005).empty());
    EXPECT_EQ(link.receive(0.0101).size(), 1u);
    EXPECT_EQ(link.receive(0.0301).size(), 2u);
    EXPECT_EQ(link.pendingBytes(0.0301), 0u);
}

TEST(UartLink, QueuesBackToBackSends)
{
    UartLink link(1000.0);
    link.send({1}, 0.0);
    link.send({2}, 0.0); // must wait for the first byte
    auto bytes = link.receive(0.0201);
    ASSERT_EQ(bytes.size(), 2u);
    EXPECT_EQ(bytes[0], 1);
    EXPECT_EQ(bytes[1], 2);
}

TEST(UartLink, CorruptorAffectsDelivery)
{
    UartLink link(1e6);
    link.setCorruptor([](std::uint8_t b) {
        return static_cast<std::uint8_t>(b ^ 0xFF);
    });
    link.send({0x0F}, 0.0);
    const auto bytes = link.receive(1.0);
    ASSERT_EQ(bytes.size(), 1u);
    EXPECT_EQ(bytes[0], 0xF0);
}

TEST(UartLink, FrameOverCorruptLinkIsDroppedByDecoder)
{
    UartLink link(1e6);
    int count = 0;
    link.setCorruptor([&count](std::uint8_t b) {
        ++count;
        return count == 6 ? static_cast<std::uint8_t>(b ^ 1) : b;
    });

    Frame frame;
    frame.type = MessageType::ConfigAck;
    frame.payload = {1, 2, 3, 4};
    link.sendFrame(frame, 0.0);

    FrameDecoder decoder;
    decoder.feed(link.receive(1.0));
    EXPECT_FALSE(decoder.poll().has_value());
}


TEST(SensorBatch, RoundTripsWithQuantization)
{
    SensorBatchMessage message;
    message.channelIndex = 2;
    message.firstTimestamp = 10.5;
    message.sampleRateHz = 50.0;
    message.scale = 1.0 / 1024.0;
    message.samples = {0.0, 1.0, -2.5, 9.81};

    const auto decoded =
        decodeSensorBatch(encodeSensorBatch(message));
    EXPECT_EQ(decoded.channelIndex, 2);
    EXPECT_DOUBLE_EQ(decoded.firstTimestamp, 10.5);
    ASSERT_EQ(decoded.samples.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(decoded.samples[i], message.samples[i],
                    message.scale);
}

TEST(SensorBatch, ClampsOutOfRangeValues)
{
    SensorBatchMessage message;
    message.scale = 1.0;
    message.samples = {1e9, -1e9};
    const auto decoded =
        decodeSensorBatch(encodeSensorBatch(message));
    EXPECT_DOUBLE_EQ(decoded.samples[0], 32767.0);
    EXPECT_DOUBLE_EQ(decoded.samples[1], -32768.0);
}

TEST(SensorBatch, RejectsBadScale)
{
    SensorBatchMessage message;
    message.scale = 0.0;
    EXPECT_THROW(encodeSensorBatch(message), TransportError);
}

TEST(SensorBatch, WireOverheadAccounting)
{
    // One frame: 38 bytes of framing/header + 2 per sample.
    EXPECT_EQ(sensorBatchWireBytes(100, 1024), 38u + 200u);
    // Two frames for 2000 samples at 1024 per frame.
    EXPECT_EQ(sensorBatchWireBytes(2000, 1024), 2u * 38u + 4000u);
    EXPECT_THROW(sensorBatchWireBytes(10, 0), TransportError);
}

TEST(SensorBatch, UartFeasibilityMatchesPaperClaims)
{
    // Section 3.4: the serial connection supports low bit-rate
    // sensors (accelerometer, microphone, GPS) but not the camera.
    const UartLink uart(115200.0);
    const double usable = uart.bandwidthBitsPerSecond();
    EXPECT_TRUE(canStreamContinuously(usable, 50.0));     // accel axis
    EXPECT_TRUE(canStreamContinuously(usable, 3 * 50.0)); // 3 axes
    EXPECT_TRUE(canStreamContinuously(usable, 4000.0));   // microphone
    // A camera stream (640*480 pixels at 30 fps) is far beyond UART.
    EXPECT_FALSE(canStreamContinuously(usable, 640.0 * 480.0 * 30.0));
}

} // namespace
} // namespace sidewinder::transport
