/**
 * @file
 * swlint — static analyzer front-end for Sidewinder IL programs.
 *
 * Lints `.il` files (or the built-in application wake conditions with
 * --all-apps) using il::analyze(), reporting dataflow diagnostics
 * (SW0xx errors, SW1xx warnings) plus the hub admission verdict
 * (SW017/SW201) from the MCU capability model and the hub-recovery
 * re-push cost note (SW202).
 *
 * --dump-plan renders each program's lowered il::ExecutionPlan — the
 * exact node set, costs, and sharing keys the hub engine installs —
 * instead of linting (docs/execution-plan.md).
 *
 * Exit status: 0 when clean, 1 when any program has errors (or
 * warnings under --Werror), 2 on usage or I/O errors.
 */

#include <fstream>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "apps/apps.h"
#include "apps/predefined.h"
#include "core/sensors.h"
#include "hub/mcu.h"
#include "hub/placer.h"
#include "hub/reconfig.h"
#include "il/analyze.h"
#include "il/delta.h"
#include "il/analyze_range.h"
#include "il/lower.h"
#include "il/optimize.h"
#include "il/parser.h"
#include "il/plan.h"
#include "il/writer.h"
#include "support/error.h"
#include "transport/link.h"
#include "transport/messages.h"
#include "transport/reliable.h"

namespace {

using namespace sidewinder;

struct Options
{
    bool allApps = false;
    bool warningsAsErrors = false;
    bool json = false;
    bool dumpPlan = false;
    /** Fold the value-range analyzer's SW3xx diagnostics into lint. */
    bool ranges = false;
    /** Prove for Q15 execution: SW301 saturation becomes an error. */
    bool q15 = false;
    /** Render il::renderRanges per program instead of linting. */
    bool dumpRanges = false;
    /** Render the live-reconfiguration delta between two .il files. */
    bool diffPlan = false;
    /** Render each program's negotiated placement across the platform
        executor space instead of linting. */
    bool place = false;
    std::string channelSpec = "all";
    std::vector<std::string> files;
};

/** One program to lint: a name, its IL, and the channels it runs on. */
struct LintUnit
{
    std::string name;
    il::Program program;
    std::vector<il::ChannelInfo> channels;
    /** Syntax error text when the program could not be parsed. */
    std::string parseFailure;
};

/** Minimal JSON string escaping for names and error texts. */
std::string
escapeJson(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

void
usage(std::ostream &out)
{
    out << "usage: swlint [options] [file.il ...]\n"
           "\n"
           "Statically analyze Sidewinder IL wake-up conditions.\n"
           "\n"
           "  --all-apps       lint the built-in application wake\n"
           "                   conditions (hub-optimized form) instead\n"
           "                   of files\n"
           "  --Werror         treat warnings as errors\n"
           "  --json           machine-readable JSON report\n"
           "  --dump-plan      render each program's lowered\n"
           "                   ExecutionPlan instead of linting\n"
           "  --ranges         also run the value-range abstract\n"
           "                   interpreter (SW3xx: Q15 saturation,\n"
           "                   dead/always-firing wakes, proven\n"
           "                   wake-rate bounds)\n"
           "  --q15            prove for Q15 fixed-point execution:\n"
           "                   possible saturation (SW301) becomes an\n"
           "                   error (implies --ranges)\n"
           "  --dump-ranges    render each program's per-node value\n"
           "                   intervals and proofs instead of linting\n"
           "  --place          render each program's negotiated home\n"
           "                   across the platform executor space\n"
           "                   (MSP430 / LM4F120 / iCE40-hub / AP)\n"
           "                   instead of linting; honours --json\n"
           "  --diff-plan OLD.il NEW.il\n"
           "                   render the live-reconfiguration delta a\n"
           "                   hub running OLD would receive to move to\n"
           "                   NEW: shipped vs hash-reused nodes and\n"
           "                   the delta-vs-full wire bytes\n"
           "  --channels SPEC  channels for .il files: accel, audio,\n"
           "                   baro, all (default), or a custom\n"
           "                   NAME=RATE_HZ[,NAME=RATE_HZ...] list\n"
           "  -h, --help       show this help\n";
}

std::vector<il::ChannelInfo>
parseChannelSpec(const std::string &spec)
{
    if (spec == "all")
        return core::allChannels();
    if (spec == "accel")
        return core::accelerometerChannels();
    if (spec == "audio")
        return core::audioChannels();
    if (spec == "baro")
        return core::barometerChannels();

    std::vector<il::ChannelInfo> channels;
    std::stringstream stream(spec);
    std::string item;
    while (std::getline(stream, item, ',')) {
        const auto eq = item.find('=');
        if (eq == std::string::npos || eq == 0)
            throw ConfigError("bad channel spec '" + item +
                              "' (want NAME=RATE_HZ)");
        il::ChannelInfo info;
        info.name = item.substr(0, eq);
        try {
            info.sampleRateHz = std::stod(item.substr(eq + 1));
        } catch (const std::exception &) {
            throw ConfigError("bad channel rate in '" + item + "'");
        }
        if (info.sampleRateHz <= 0.0)
            throw ConfigError("channel rate must be positive in '" +
                              item + "'");
        channels.push_back(std::move(info));
    }
    if (channels.empty())
        throw ConfigError("channel spec '" + spec + "' names no channels");
    return channels;
}

/** The built-in programs, in the deduplicated form the hub installs. */
std::vector<LintUnit>
builtinUnits()
{
    std::vector<LintUnit> units;
    auto add = [&](const std::string &name,
                   const core::ProcessingPipeline &pipeline,
                   std::vector<il::ChannelInfo> channels) {
        LintUnit unit;
        unit.name = name;
        unit.program = il::optimize(pipeline.compile());
        unit.channels = std::move(channels);
        units.push_back(std::move(unit));
    };

    for (const auto &app : apps::allApps())
        add("app:" + app->name(), app->wakeCondition(), app->channels());
    add("app:gesture", apps::makeGestureApp()->wakeCondition(),
        apps::makeGestureApp()->channels());
    add("app:floors", apps::makeFloorsApp()->wakeCondition(),
        apps::makeFloorsApp()->channels());
    add("predefined:significantMotion",
        apps::significantMotionCondition(),
        core::accelerometerChannels());
    add("predefined:significantSound", apps::significantSoundCondition(),
        core::audioChannels());
    return units;
}

LintUnit
fileUnit(const std::string &path,
         const std::vector<il::ChannelInfo> &channels)
{
    LintUnit unit;
    unit.name = path;
    unit.channels = channels;

    std::ifstream in(path);
    if (!in)
        throw ConfigError("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();

    try {
        unit.program = il::parse(text.str());
    } catch (const ParseError &error) {
        unit.parseFailure = error.what();
    }
    return unit;
}

/**
 * Analyze one unit and fold in the hub admission verdict. The
 * analyzer's cost block already prices the lowered ExecutionPlan —
 * the node set the hub instantiates — so shared subtrees are not
 * double-charged and no second analysis pass is needed.
 */
il::AnalysisResult
lint(const LintUnit &unit, const Options &options)
{
    il::AnalysisResult result = il::analyze(unit.program, unit.channels);
    if (result.ok() && (options.ranges || options.q15)) {
        // Value-range pass (SW3xx): interval proofs over the same
        // lowered plan — Q15 saturation, dead or always-firing
        // wakes, and provably tighter wake-rate bounds.
        il::RangeOptions range_options;
        range_options.q15 = options.q15;
        const il::RangeAnalysis ranges = il::analyzeProgramRanges(
            unit.program, unit.channels, range_options);
        for (const auto &d : ranges.diagnostics)
            result.diagnostics.push_back(d);
    }
    if (result.ok()) {
        for (auto &d : hub::admissionDiagnostics(result.cost))
            result.diagnostics.push_back(std::move(d));

        // Recovery-cost note (SW202): after a hub reset, the phone
        // re-pushes this condition over the reliable channel; report
        // the wire bytes and serialization time of one fault-free
        // re-push so developers can see recovery latency per
        // condition (docs/fault-model.md). The wire form is the
        // lowered plan's canonical IL — what the manager ships.
        const il::ExecutionPlan plan =
            il::lower(unit.program, unit.channels);
        const transport::Frame push = transport::encodeConfigPush(
            {0, il::write(plan.toProgram())});
        const std::size_t bytes = transport::reliableWireBytes(push);
        const transport::UartLink uart(115200.0);
        const double millis = uart.transferSeconds(bytes) * 1e3;

        // Live-reconfiguration floor: the delta of updating this
        // condition on a hub where every node is already live (all
        // reused by hash). A real re-tune ships this plus its changed
        // nodes — the best case an update can hope for, next to what
        // a full push costs.
        const std::unordered_set<std::string> live(
            plan.shareKeys.begin(), plan.shareKeys.end());
        const hub::UpdateWireCost update = hub::updateWireCost(
            plan, il::computeDelta(plan, live));

        il::Diagnostic note;
        note.code = il::SW202_REPUSH_COST;
        note.severity = il::Severity::Note;
        note.line = 1;
        note.column = 1;
        std::ostringstream msg;
        msg << "hub-recovery re-push ships " << bytes
            << " wire bytes (~" << std::fixed << std::setprecision(1)
            << millis << " ms at 115200 baud); live-reconfig delta "
            << "floor " << update.deltaBytes << " bytes (~"
            << uart.transferSeconds(update.deltaBytes) * 1e3
            << " ms blind to config, samples keep flowing)";
        note.message = msg.str();
        result.diagnostics.push_back(std::move(note));
    }
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--all-apps") {
            options.allApps = true;
        } else if (arg == "--Werror") {
            options.warningsAsErrors = true;
        } else if (arg == "--json") {
            options.json = true;
        } else if (arg == "--dump-plan") {
            options.dumpPlan = true;
        } else if (arg == "--ranges") {
            options.ranges = true;
        } else if (arg == "--q15") {
            options.q15 = true;
            options.ranges = true;
        } else if (arg == "--dump-ranges") {
            options.dumpRanges = true;
        } else if (arg == "--place") {
            options.place = true;
        } else if (arg == "--diff-plan") {
            options.diffPlan = true;
        } else if (arg == "--channels") {
            if (i + 1 >= argc) {
                std::cerr << "swlint: --channels needs an argument\n";
                return 2;
            }
            options.channelSpec = argv[++i];
        } else if (arg == "-h" || arg == "--help") {
            usage(std::cout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "swlint: unknown option '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        } else {
            options.files.push_back(arg);
        }
    }

    if (options.diffPlan) {
        // Diff mode stands alone: lower both programs and render the
        // update the second would ship to a hub running the first.
        if (options.allApps || options.files.size() != 2) {
            std::cerr
                << "swlint: --diff-plan needs exactly OLD.il NEW.il\n";
            return 2;
        }
        try {
            const auto channels = parseChannelSpec(options.channelSpec);
            const LintUnit old_unit = fileUnit(options.files[0], channels);
            const LintUnit new_unit = fileUnit(options.files[1], channels);
            for (const auto *unit : {&old_unit, &new_unit})
                if (!unit->parseFailure.empty())
                    throw ParseError(unit->name + ": " +
                                     unit->parseFailure);
            std::cout << "== diff-plan " << old_unit.name << " -> "
                      << new_unit.name << " ==\n"
                      << hub::renderDiffPlan(
                             il::lower(old_unit.program, channels),
                             il::lower(new_unit.program, channels));
        } catch (const SidewinderError &error) {
            std::cerr << "swlint: " << error.what() << "\n";
            return 2;
        }
        return 0;
    }

    if (!options.allApps && options.files.empty()) {
        std::cerr << "swlint: nothing to lint (give .il files or "
                     "--all-apps)\n";
        usage(std::cerr);
        return 2;
    }

    std::vector<LintUnit> units;
    try {
        if (options.allApps) {
            units = builtinUnits();
        } else {
            const auto channels =
                parseChannelSpec(options.channelSpec);
            for (const auto &path : options.files)
                units.push_back(fileUnit(path, channels));
        }
    } catch (const SidewinderError &error) {
        std::cerr << "swlint: " << error.what() << "\n";
        return 2;
    }

    if (options.dumpRanges) {
        // Render the range analyzer's verdict per unit: one line per
        // plan node with its proven interval, magnitude bound, rate
        // bound, and Q15 verdict, then the SW3xx diagnostics.
        bool any_errors = false;
        for (const auto &unit : units) {
            std::cout << "== " << unit.name << " ==\n";
            if (!unit.parseFailure.empty()) {
                std::cout << "error: " << unit.parseFailure << "\n";
                any_errors = true;
                continue;
            }
            try {
                il::RangeOptions range_options;
                range_options.q15 = options.q15;
                const il::ExecutionPlan plan =
                    il::lower(unit.program, unit.channels);
                std::cout << il::renderRanges(
                    plan, il::analyzeRanges(plan, range_options));
            } catch (const SidewinderError &error) {
                std::cout << "error: " << error.what() << "\n";
                any_errors = true;
            }
        }
        return any_errors ? 1 : 0;
    }

    if (options.place) {
        // Render the negotiated-congestion placement of each unit
        // across the platform executor space (hub/placer.h). The text
        // form is golden-tested (tests/data/placements/), so its
        // format is stable: see hub::renderPlacementReport.
        bool any_errors = false;
        std::string placeJson = "[";
        for (std::size_t i = 0; i < units.size(); ++i) {
            const LintUnit &unit = units[i];
            if (!options.json)
                std::cout << "== " << unit.name << " ==\n";
            try {
                if (!unit.parseFailure.empty())
                    throw ParseError(unit.parseFailure);
                const il::ExecutionPlan plan =
                    il::lower(unit.program, unit.channels);
                if (options.json) {
                    const hub::PlacementDecision home =
                        hub::placeCondition(plan,
                                            hub::platformExecutors());
                    std::ostringstream os;
                    os << "{\"program\":\"" << escapeJson(unit.name)
                       << "\",\"executor\":\""
                       << escapeJson(home.executorName)
                       << "\",\"wireTarget\":\""
                       << escapeJson(home.wireTarget)
                       << "\",\"marginalPowerMw\":"
                       << home.marginalPowerMw << "}";
                    placeJson += (i ? ",\n" : "\n") + os.str();
                } else {
                    std::cout << hub::renderPlacementReport(
                        plan, hub::platformExecutors());
                }
            } catch (const SidewinderError &error) {
                any_errors = true;
                if (options.json)
                    placeJson += (i ? ",\n" : "\n") +
                                 std::string("{\"program\":\"") +
                                 escapeJson(unit.name) +
                                 "\",\"error\":\"" +
                                 escapeJson(error.what()) + "\"}";
                else
                    std::cout << "error: " << error.what() << "\n";
            }
        }
        if (options.json)
            std::cout << placeJson << "\n]\n";
        return any_errors ? 1 : 0;
    }

    if (options.dumpPlan) {
        // Render the lowered ExecutionPlan for each unit — the node
        // set, costs, and sharing keys the hub engine installs. The
        // output is golden-tested (tests/data/plans/), so its format
        // is stable: see il::renderPlan.
        bool any_errors = false;
        for (const auto &unit : units) {
            std::cout << "== " << unit.name << " ==\n";
            if (!unit.parseFailure.empty()) {
                std::cout << "error: " << unit.parseFailure << "\n";
                any_errors = true;
                continue;
            }
            try {
                std::cout << il::renderPlan(
                    il::lower(unit.program, unit.channels));
            } catch (const SidewinderError &error) {
                std::cout << "error: " << error.what() << "\n";
                any_errors = true;
            }
        }
        return any_errors ? 1 : 0;
    }

    bool failed = false;
    std::size_t errors = 0;
    std::size_t warnings = 0;
    std::string json = "[";

    for (std::size_t i = 0; i < units.size(); ++i) {
        const LintUnit &unit = units[i];

        if (!unit.parseFailure.empty()) {
            // Syntax errors preempt analysis; surface them in the
            // same per-file shape.
            failed = true;
            ++errors;
            if (options.json) {
                il::AnalysisResult empty;
                il::Diagnostic d;
                d.code = "SW000";
                d.severity = il::Severity::Error;
                d.line = 1;
                d.column = 1;
                d.message = unit.parseFailure;
                empty.diagnostics.push_back(std::move(d));
                json += (i ? ",\n" : "\n") +
                        il::renderJson(empty, unit.name);
            } else {
                std::cout << unit.name
                          << ": error: " << unit.parseFailure << "\n";
            }
            continue;
        }

        const il::AnalysisResult result = lint(unit, options);
        errors += result.errorCount();
        warnings += result.warningCount();
        if (result.errorCount() > 0 ||
            (options.warningsAsErrors && result.warningCount() > 0))
            failed = true;

        if (options.json)
            json += (i ? ",\n" : "\n") + il::renderJson(result, unit.name);
        else
            std::cout << il::renderText(result, unit.name);
    }

    if (options.json) {
        std::cout << json << "\n]\n";
    } else {
        std::cout << units.size() << " program(s): " << errors
                  << " error(s), " << warnings << " warning(s)";
        if (options.warningsAsErrors && warnings > 0)
            std::cout << " (warnings are errors)";
        std::cout << "\n";
    }
    return failed ? 1 : 0;
}
